"""Online-serving extension (paper Sec. 7, "Apply to ORCA or vLLM").

LLM-PQ targets the offline task, but the paper's discussion points out
the trade-off an online deployment would face: *"there is always a
trade-off between the speed of quantized operators and the amount of
available memory"* — lower-precision weights free KV-cache memory, which
raises the admissible concurrent batch, which raises throughput under
load.  This module makes that discussion executable with two scheduling
policies over the same arrival trace:

* ``policy="wave"`` — the offline baseline applied online: each wave
  admits queued requests while the wave (padded to its longest member's
  prompt and generation) still fits every stage's memory, serves it with
  the offline pipeline simulator, and only then admits again;
* ``policy="continuous"`` — iteration-level (ORCA-style) scheduling:
  requests are admitted at token boundaries whenever their per-stage KV
  reservation fits the live headroom, newly admitted requests prefill
  while the in-flight group decodes, and a finished request's memory is
  refunded at the very next boundary.  ``engine="des"`` prices each
  iteration with the event-driven task graph instead of the closed form.

Admissibility is evaluated *per wave / per iteration* against the
planner's Sec.-4.1 memory model — not against a single trace-wide
maximum — so short waves admit more than the worst-case bound would
allow.  Per-request latency = completion − arrival; throughput =
generated tokens / makespan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..cost.memory import FRAMEWORK_OVERHEAD_BYTES, kv_cache_bytes, stage_memory
from ..hardware.cluster import Cluster
from ..models.registry import get_model
from ..core.plan import ExecutionPlan
from ..workload.spec import Workload
from .comm import boundary_links, stage_comm_time
from .kernels import (
    embedding_exec_time,
    layer_exec_time,
    layer_exec_times_decode_sweep,
)
from .pipeline import simulate_pipeline
from .pipeline_des import iteration_makespan_des, simulate_pipeline_des

__all__ = [
    "OnlineRequest",
    "OnlineResult",
    "sample_poisson_trace",
    "max_admissible_batch",
    "stage_kv_headroom",
    "request_kv_bytes",
    "simulate_online",
]


@dataclass(frozen=True)
class OnlineRequest:
    """One request of the online stream."""

    arrival: float
    prompt_len: int
    gen_len: int


@dataclass(frozen=True)
class OnlineResult:
    """Aggregate metrics of an online run."""

    completed: int
    makespan: float
    mean_latency: float
    p95_latency: float
    throughput: float  #: generated tokens per second
    waves: int
    mean_wave_batch: float
    # --- extended serving metrics (defaults keep old call sites valid) ---
    policy: str = "wave"
    p50_latency: float = 0.0
    p99_latency: float = 0.0
    mean_ttft: float = 0.0
    p95_ttft: float = 0.0
    rejected: int = 0          #: requests that could never be admitted
    iterations: int = 0        #: token boundaries run (continuous policy)
    mean_inflight: float = 0.0  #: avg concurrently-running requests

    def summary(self) -> str:
        """One-line human-readable result."""
        head = (
            f"[{self.policy}] {self.completed} reqs in {self.makespan:.1f}s | "
            f"mean latency {self.mean_latency:.2f}s (p95 {self.p95_latency:.2f}) | "
            f"ttft {self.mean_ttft:.2f}s | {self.throughput:.1f} tok/s"
        )
        if self.policy == "continuous":
            tail = f" | {self.iterations} iters, avg inflight {self.mean_inflight:.1f}"
        else:
            tail = f" | {self.waves} waves, avg batch {self.mean_wave_batch:.1f}"
        if self.rejected:
            tail += f" | {self.rejected} rejected"
        return head + tail


def sample_poisson_trace(
    rate: float,
    duration: float,
    *,
    seed: int = 0,
    max_prompt: int = 512,
    max_gen: int = 128,
) -> list[OnlineRequest]:
    """Poisson arrivals with log-normal prompt/generation lengths."""
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    rng = np.random.default_rng(seed)
    out: list[OnlineRequest] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t > duration:
            break
        s = int(np.clip(np.exp(rng.normal(4.8, 0.8)), 8, max_prompt))
        n = int(np.clip(np.exp(rng.normal(3.4, 0.6)), 4, max_gen))
        out.append(OnlineRequest(arrival=t, prompt_len=s, gen_len=n))
    return out


def max_admissible_batch(
    plan: ExecutionPlan,
    *,
    prompt_len: int,
    gen_len: int,
    cap: int = 256,
) -> int:
    """Largest concurrent batch the plan's memory headroom admits.

    The Sec.-7 trade-off in one function: each stage's weights are fixed
    by the plan's bitwidths, so the remaining memory bounds the KV cache
    and hence the batch.  Lower-precision plans admit more requests.
    """
    cfg = get_model(plan.model_name)
    kv_bits = int(plan.meta.get("kv_bits", 16))
    best = 0
    for b in range(1, cap + 1):
        ok = True
        for j, stage in enumerate(plan.stages):
            mem = stage_memory(
                cfg, stage.layer_bits,
                global_batch=b, prompt_len=prompt_len, gen_len=gen_len,
                prefill_microbatch=min(plan.prefill_microbatch, b),
                decode_microbatch=min(plan.decode_microbatch, b),
                is_first=(j == 0), is_last=(j == plan.num_stages - 1),
                kv_bits=kv_bits,
            )
            if not mem.fits(stage.device.spec.memory_bytes):
                ok = False
                break
        if not ok:
            break
        best = b
    return best


def stage_kv_headroom(plan: ExecutionPlan) -> np.ndarray:
    """Per-stage KV byte pool under the planner's memory accounting.

    Device capacity minus framework overhead minus every non-KV
    component of the stage's modeled peak (weights, embeddings, batch-1
    temp workspace) — the pool the iteration-level admission control
    hands out in per-request :func:`request_kv_bytes` slices.  The same
    arithmetic the real :class:`~repro.runtime.scheduler
    .ContinuousScheduler` uses, so simulator and runtime admit the same
    requests.
    """
    cfg = get_model(plan.model_name)
    kv_bits = int(plan.meta.get("kv_bits", 16))
    w = plan.workload
    out = np.zeros(plan.num_stages)
    for j, stage in enumerate(plan.stages):
        base = stage_memory(
            cfg, stage.layer_bits,
            global_batch=1,
            prompt_len=w.prompt_len,
            gen_len=w.gen_len,
            prefill_microbatch=1,
            decode_microbatch=1,
            is_first=(j == 0),
            is_last=(j == plan.num_stages - 1),
            kv_bits=kv_bits,
        )
        non_kv = base.total - base.kv_cache
        cap = stage.device.spec.memory_bytes
        out[j] = cap - FRAMEWORK_OVERHEAD_BYTES - non_kv
    return np.maximum(out, 0.0)


def request_kv_bytes(
    plan: ExecutionPlan, prompt_len: int, gen_len: int
) -> np.ndarray:
    """Per-stage KV bytes one request reserves for its whole lifetime."""
    cfg = get_model(plan.model_name)
    kv_bits = int(plan.meta.get("kv_bits", 16))
    return np.array(
        [
            kv_cache_bytes(
                cfg, stage.num_layers, 1, prompt_len + gen_len, kv_bits=kv_bits
            )
            for stage in plan.stages
        ]
    )


def _infeasible(policy: str, rejected: int) -> OnlineResult:
    """Graceful no-request-admissible outcome (nothing to serve)."""
    return OnlineResult(
        completed=0, makespan=float("inf"), mean_latency=float("inf"),
        p95_latency=float("inf"), throughput=0.0, waves=0,
        mean_wave_batch=0.0, policy=policy,
        p50_latency=float("inf"), p99_latency=float("inf"),
        mean_ttft=float("inf"), p95_ttft=float("inf"), rejected=rejected,
    )


def _wave_fits(
    plan: ExecutionPlan, cfg, wave: "list[OnlineRequest]"
) -> bool:
    """Exact per-wave admissibility at the wave's own (s, n) maxima."""
    kv_bits = int(plan.meta.get("kv_bits", 16))
    b = len(wave)
    s = max(r.prompt_len for r in wave)
    n = max(r.gen_len for r in wave)
    for j, stage in enumerate(plan.stages):
        mem = stage_memory(
            cfg, stage.layer_bits,
            global_batch=b, prompt_len=s, gen_len=n,
            prefill_microbatch=min(plan.prefill_microbatch, b),
            decode_microbatch=min(plan.decode_microbatch, b),
            is_first=(j == 0), is_last=(j == plan.num_stages - 1),
            kv_bits=kv_bits,
        )
        if not mem.fits(stage.device.spec.memory_bytes):
            return False
    return True


def _simulate_wave(
    plan: ExecutionPlan,
    cluster: Cluster,
    reqs: "list[OnlineRequest]",
    *,
    max_batch: int | None,
    engine: str,
) -> OnlineResult:
    cfg = get_model(plan.model_name)
    if max_batch is not None and max_batch <= 0:
        return _infeasible("wave", len(reqs))

    now = 0.0
    i = 0
    latencies: list[float] = []
    ttfts: list[float] = []
    total_tokens = 0
    wave_batches: list[int] = []
    rejected = 0
    while i < len(reqs):
        if reqs[i].arrival > now:
            now = reqs[i].arrival  # idle until next arrival
        wave: list[OnlineRequest] = []
        j = i
        while j < len(reqs) and (not wave or reqs[j].arrival <= now):
            if max_batch is not None:
                if len(wave) >= max_batch:
                    break
            elif not _wave_fits(plan, cfg, wave + [reqs[j]]):
                # per-wave admissibility (not a trace-wide bound): grow
                # while this wave, at its own maxima, still fits
                if not wave:
                    rejected += 1  # unfit even alone — skip gracefully
                    j += 1
                    i = j
                    continue
                break
            wave.append(reqs[j])
            j += 1
        i = j
        if not wave:
            continue
        s = max(r.prompt_len for r in wave)
        n = max(r.gen_len for r in wave)
        w = Workload(prompt_len=s, gen_len=n, global_batch=len(wave))
        wave_plan = replace(
            plan,
            workload=w,
            prefill_microbatch=min(plan.prefill_microbatch, len(wave)),
            decode_microbatch=min(plan.decode_microbatch, len(wave)),
        )
        res = simulate_pipeline(wave_plan, cluster)
        if not res.feasible:
            raise RuntimeError("wave infeasible despite admissible batch bound")
        total = (
            simulate_pipeline_des(wave_plan, cluster).total_latency
            if engine == "des"
            else res.total_latency
        )
        ttfts.extend(now + res.prefill_latency - r.arrival for r in wave)
        now += total
        latencies.extend(now - r.arrival for r in wave)
        # useful tokens only: the padding to n_max is wasted compute,
        # not serving throughput
        total_tokens += sum(r.gen_len for r in wave)
        wave_batches.append(len(wave))

    if not latencies:
        return _infeasible("wave", rejected)
    lat = np.array(latencies)
    tt = np.array(ttfts)
    return OnlineResult(
        completed=len(latencies),
        makespan=now,
        mean_latency=float(lat.mean()),
        p95_latency=float(np.quantile(lat, 0.95)),
        throughput=total_tokens / now,
        waves=len(wave_batches),
        mean_wave_batch=float(np.mean(wave_batches)),
        policy="wave",
        p50_latency=float(np.quantile(lat, 0.50)),
        p99_latency=float(np.quantile(lat, 0.99)),
        mean_ttft=float(tt.mean()),
        p95_ttft=float(np.quantile(tt, 0.95)),
        rejected=rejected,
        mean_inflight=float(np.mean(wave_batches)),
    )


def _unit_prefill_times(plan, cfg, links, prompt_len: int) -> np.ndarray:
    """Per-stage busy time of one batch-1 prefill unit at its own ``s``."""
    n_stages = plan.num_stages
    out = np.zeros(n_stages)
    for j, stage in enumerate(plan.stages):
        gpu = stage.device.spec
        t = sum(
            layer_exec_time(gpu, cfg, b, 1, prompt_len, prompt_len)
            for b in stage.layer_bits
        )
        if j == 0:
            t += embedding_exec_time(gpu, cfg, 1, prompt_len, with_logits=False)
        if j == n_stages - 1:
            t += embedding_exec_time(gpu, cfg, 1, 1, with_logits=True)
        if j < n_stages - 1:
            t += stage_comm_time(links[j], cfg, 1, prompt_len)
        out[j] = t
    return out


def _unit_decode_times(plan, cfg, links, batch: int, context: float) -> np.ndarray:
    """Per-stage busy time of the fused decode group at ``context``."""
    n_stages = plan.num_stages
    ctx = np.array([context], dtype=np.float64)
    out = np.zeros(n_stages)
    for j, stage in enumerate(plan.stages):
        gpu = stage.device.spec
        t = 0.0
        for bits, count in stage.bit_counts.items():
            t += count * float(
                layer_exec_times_decode_sweep(gpu, cfg, bits, batch, ctx)[0]
            )
        if j == 0:
            t += embedding_exec_time(gpu, cfg, batch, 1, with_logits=False)
        if j == n_stages - 1:
            t += embedding_exec_time(gpu, cfg, batch, 1, with_logits=True)
        # the tail->head token feedback rides the last link
        t += stage_comm_time(links[j], cfg, batch, 1)
        out[j] = t
    return out


def _simulate_continuous(
    plan: ExecutionPlan,
    cluster: Cluster,
    reqs: "list[OnlineRequest]",
    *,
    max_batch: int | None,
    engine: str,
) -> OnlineResult:
    cfg = get_model(plan.model_name)
    devices = [s.device for s in plan.stages]
    links = boundary_links(cluster, devices)
    headroom = stage_kv_headroom(plan)
    used = np.zeros(plan.num_stages)

    pending: deque = deque(reqs)
    active: list[dict] = []
    now = 0.0
    latencies: list[float] = []
    ttfts: list[float] = []
    total_tokens = 0
    rejected = 0
    iterations = 0
    inflight_samples: list[int] = []

    while pending or active:
        if not active and pending and pending[0].arrival > now:
            now = pending[0].arrival  # jump the idle gap

        # ---- admission at this token boundary (FIFO, head-of-line) ----
        newly: list[dict] = []
        while pending and pending[0].arrival <= now:
            if max_batch is not None and len(active) + len(newly) >= max_batch:
                break
            r = pending[0]
            charge = request_kv_bytes(plan, r.prompt_len, r.gen_len)
            if np.any(used + charge > headroom + 1e-6):
                if not active and not newly:
                    # alone in an empty system and still unfit: never fits
                    pending.popleft()
                    rejected += 1
                    continue
                break
            pending.popleft()
            used += charge
            newly.append({"req": r, "produced": 0, "charge": charge})
        if not newly and not active:
            continue

        # ---- one iteration: fused decode + batch-1 prefills ------------
        units: list[np.ndarray] = []
        if active:
            ctx = float(
                np.mean([a["req"].prompt_len + a["produced"] for a in active])
            )
            units.append(_unit_decode_times(plan, cfg, links, len(active), ctx))
        for a in newly:
            units.append(_unit_prefill_times(plan, cfg, links, a["req"].prompt_len))
        if engine == "des":
            step = iteration_makespan_des(units)
        else:
            step = float(units[0].sum() + sum(u.max() for u in units[1:]))
        now += step
        iterations += 1
        inflight_samples.append(len(active) + len(newly))

        for a in active:
            a["produced"] += 1
        for a in newly:
            a["produced"] = 1
            ttfts.append(now - a["req"].arrival)
        active.extend(newly)

        still: list[dict] = []
        for a in active:
            if a["produced"] >= a["req"].gen_len:
                # retire at the boundary: the refund is immediately
                # available to the next admission
                latencies.append(now - a["req"].arrival)
                total_tokens += a["req"].gen_len
                used -= a["charge"]
            else:
                still.append(a)
        active = still

    if not latencies:
        return _infeasible("continuous", rejected)
    lat = np.array(latencies)
    tt = np.array(ttfts)
    return OnlineResult(
        completed=len(latencies),
        makespan=now,
        mean_latency=float(lat.mean()),
        p95_latency=float(np.quantile(lat, 0.95)),
        throughput=total_tokens / now,
        waves=0,
        mean_wave_batch=0.0,
        policy="continuous",
        p50_latency=float(np.quantile(lat, 0.50)),
        p99_latency=float(np.quantile(lat, 0.99)),
        mean_ttft=float(tt.mean()),
        p95_ttft=float(np.quantile(tt, 0.95)),
        rejected=rejected,
        iterations=iterations,
        mean_inflight=float(np.mean(inflight_samples)),
    )


def simulate_online(
    plan: ExecutionPlan,
    cluster: Cluster,
    trace: Sequence[OnlineRequest],
    *,
    max_batch: int | None = None,
    policy: str = "wave",
    engine: str = "analytic",
) -> OnlineResult:
    """Serve ``trace`` on ``plan``'s pipeline under a scheduling policy.

    ``policy="wave"`` batches queued requests into padded waves (the
    offline discipline applied online); ``policy="continuous"`` admits
    and retires requests at token boundaries.  ``max_batch`` is an
    optional hard concurrency cap on top of the memory model — with the
    wave policy it reproduces the legacy count-capped behaviour exactly.
    ``engine="des"`` prices each wave / iteration with the event-driven
    simulator instead of the closed form.  Accepts any records with
    ``arrival`` / ``prompt_len`` / ``gen_len`` attributes, including
    :class:`~repro.workload.traces.RequestArrival`.
    """
    if not trace:
        raise ValueError("empty trace")
    if policy not in ("wave", "continuous"):
        raise ValueError(f"unknown policy {policy!r}")
    if engine not in ("analytic", "des"):
        raise ValueError(f"unknown engine {engine!r}")
    reqs = sorted(trace, key=lambda r: r.arrival)
    if policy == "continuous":
        return _simulate_continuous(
            plan, cluster, reqs, max_batch=max_batch, engine=engine
        )
    return _simulate_wave(plan, cluster, reqs, max_batch=max_batch, engine=engine)
