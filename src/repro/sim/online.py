"""Online-serving extension (paper Sec. 7, "Apply to ORCA or vLLM").

LLM-PQ targets the offline task, but the paper's discussion points out
the trade-off an online deployment would face: *"there is always a
trade-off between the speed of quantized operators and the amount of
available memory"* — lower-precision weights free KV-cache memory, which
raises the admissible concurrent batch, which raises throughput under
load.  This module makes that discussion executable with two scheduling
policies over the same arrival trace:

* ``policy="wave"`` — the offline baseline applied online: each wave
  admits queued requests while the wave (padded to its longest member's
  prompt and generation) still fits every stage's memory, serves it with
  the offline pipeline simulator, and only then admits again;
* ``policy="continuous"`` — iteration-level (ORCA-style) scheduling:
  requests are admitted at token boundaries whenever their per-stage KV
  reservation fits the live headroom, newly admitted requests prefill
  while the in-flight group decodes, and a finished request's memory is
  refunded at the very next boundary.  ``engine="des"`` prices each
  iteration with the event-driven task graph instead of the closed form.

Every time and memory figure comes from one
:class:`~repro.cost.stagecosts.StageCostModel` — the same view the
offline simulators, the planner, and the real scheduler use — so the
admission decisions here agree with the runtime's by construction, and
per-iteration pricing hits the cost model's shared tables instead of
re-deriving kernel times from scratch.  Simulator modules are imported
lazily, so trace-only users of this module never pay the sim import.

Admissibility is evaluated *per wave / per iteration* against the
planner's Sec.-4.1 memory model — not against a single trace-wide
maximum — so short waves admit more than the worst-case bound would
allow.  Per-request latency = completion − arrival; throughput =
generated tokens / makespan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .. import stats
from ..cost.stagecosts import StageCostModel
from ..workload.spec import Workload

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..core.plan import ExecutionPlan
    from ..cost.latency import LatencyModel
    from ..hardware.cluster import Cluster
    from ..runtime.replan import DriftConfig, Replanner

__all__ = [
    "OnlineRequest",
    "OnlineResult",
    "max_admissible_batch",
    "stage_kv_headroom",
    "request_kv_bytes",
    "simulate_online",
]


@dataclass(frozen=True)
class OnlineRequest:
    """One request of the online stream."""

    arrival: float
    prompt_len: int
    gen_len: int


@dataclass(frozen=True)
class OnlineResult:
    """Aggregate metrics of an online run."""

    completed: int
    makespan: float
    mean_latency: float
    p95_latency: float
    throughput: float  #: generated tokens per second
    waves: int
    mean_wave_batch: float
    # --- extended serving metrics (defaults keep old call sites valid) ---
    policy: str = "wave"
    p50_latency: float = 0.0
    p99_latency: float = 0.0
    mean_ttft: float = 0.0
    p95_ttft: float = 0.0
    rejected: int = 0          #: requests that could never be admitted
    iterations: int = 0        #: token boundaries run (continuous policy)
    mean_inflight: float = 0.0  #: avg concurrently-running requests
    # --- live-replanning counters (drift-aware continuous runs) ---------
    drift_triggers: int = 0    #: drift-detector firings
    migrations: int = 0        #: live plan switches executed
    replans: int = 0           #: migrations that adopted a new plan
    migration_seconds: float = 0.0  #: simulated pause spent migrating

    def summary(self) -> str:
        """One-line human-readable result."""
        head = (
            f"[{self.policy}] {self.completed} reqs in {self.makespan:.1f}s | "
            f"mean latency {self.mean_latency:.2f}s (p95 {self.p95_latency:.2f}) | "
            f"ttft {self.mean_ttft:.2f}s | {self.throughput:.1f} tok/s"
        )
        if self.policy == "continuous":
            tail = f" | {self.iterations} iters, avg inflight {self.mean_inflight:.1f}"
        else:
            tail = f" | {self.waves} waves, avg batch {self.mean_wave_batch:.1f}"
        if self.rejected:
            tail += f" | {self.rejected} rejected"
        if self.migrations or self.drift_triggers:
            tail += (
                f" | {self.drift_triggers} drift triggers, "
                f"{self.migrations} migrations "
                f"({self.migration_seconds:.2f}s paused)"
            )
        return head + tail


def max_admissible_batch(
    plan: "ExecutionPlan",
    *,
    prompt_len: int,
    gen_len: int,
    cap: int = 256,
) -> int:
    """Largest concurrent batch the plan's memory headroom admits.

    The Sec.-7 trade-off in one function: each stage's weights are fixed
    by the plan's bitwidths, so the remaining memory bounds the KV cache
    and hence the batch.  Lower-precision plans admit more requests.
    """
    return StageCostModel(plan).max_admissible_batch(
        prompt_len=prompt_len, gen_len=gen_len, cap=cap
    )


def stage_kv_headroom(plan: "ExecutionPlan") -> np.ndarray:
    """Per-stage KV byte pool under the planner's memory accounting.

    Device capacity minus framework overhead minus every non-KV
    component of the stage's modeled peak (weights, embeddings, batch-1
    temp workspace) — the pool the iteration-level admission control
    hands out in per-request :func:`request_kv_bytes` slices.  The same
    arithmetic the real :class:`~repro.runtime.scheduler
    .ContinuousScheduler` uses, so simulator and runtime admit the same
    requests.
    """
    return StageCostModel(plan).kv_headroom()


def request_kv_bytes(
    plan: "ExecutionPlan", prompt_len: int, gen_len: int
) -> np.ndarray:
    """Per-stage KV bytes one request reserves for its whole lifetime."""
    return StageCostModel(plan).request_kv_bytes(prompt_len, gen_len)


def _quantile(values: np.ndarray, q: float) -> float:
    """NaN-safe percentile: empty samples read as unbounded latency
    instead of tripping numpy's empty-slice warning and returning NaN.

    Thin wrapper over :func:`repro.stats.quantile` keeping the simulator's
    inf-on-empty convention in one obvious place.
    """
    return stats.quantile(values, q, empty=float("inf"))


def _infeasible(policy: str, rejected: int) -> OnlineResult:
    """Graceful no-request-admissible outcome (nothing to serve)."""
    return OnlineResult(
        completed=0, makespan=float("inf"), mean_latency=float("inf"),
        p95_latency=float("inf"), throughput=0.0, waves=0,
        mean_wave_batch=0.0, policy=policy,
        p50_latency=float("inf"), p99_latency=float("inf"),
        mean_ttft=float("inf"), p95_ttft=float("inf"), rejected=rejected,
    )


def _simulate_wave(
    plan: "ExecutionPlan",
    cluster: "Cluster",
    reqs: "list[OnlineRequest]",
    *,
    max_batch: int | None,
    engine: str,
    scm: StageCostModel,
    sample_sink: "dict | None" = None,
) -> OnlineResult:
    from .pipeline import simulate_pipeline
    from .pipeline_des import simulate_pipeline_des

    if sample_sink is not None:
        sample_sink["latencies"] = np.empty(0)
        sample_sink["ttfts"] = np.empty(0)
    if max_batch is not None and max_batch <= 0:
        return _infeasible("wave", len(reqs))

    now = 0.0
    i = 0
    latencies: list[float] = []
    ttfts: list[float] = []
    total_tokens = 0
    wave_batches: list[int] = []
    rejected = 0
    while i < len(reqs):
        if reqs[i].arrival > now:
            now = reqs[i].arrival  # idle until next arrival
        wave: list[OnlineRequest] = []
        j = i
        while j < len(reqs) and (not wave or reqs[j].arrival <= now):
            if max_batch is not None:
                if len(wave) >= max_batch:
                    break
            else:
                trial = wave + [reqs[j]]
                fits = scm.batch_fits(
                    len(trial),
                    max(r.prompt_len for r in trial),
                    max(r.gen_len for r in trial),
                )
                if not fits:
                    # per-wave admissibility (not a trace-wide bound): grow
                    # while this wave, at its own maxima, still fits
                    if not wave:
                        rejected += 1  # unfit even alone — skip gracefully
                        j += 1
                        i = j
                        continue
                    break
            wave.append(reqs[j])
            j += 1
        i = j
        if not wave:
            continue
        s = max(r.prompt_len for r in wave)
        n = max(r.gen_len for r in wave)
        w = Workload(prompt_len=s, gen_len=n, global_batch=len(wave))
        wave_plan = replace(
            plan,
            workload=w,
            prefill_microbatch=min(plan.prefill_microbatch, len(wave)),
            decode_microbatch=min(plan.decode_microbatch, len(wave)),
        )
        wave_scm = scm.derive(wave_plan)
        res = simulate_pipeline(wave_plan, cluster, cost_model=wave_scm)
        if not res.feasible:
            raise RuntimeError("wave infeasible despite admissible batch bound")
        total = (
            simulate_pipeline_des(
                wave_plan, cluster, cost_model=wave_scm
            ).total_latency
            if engine == "des"
            else res.total_latency
        )
        ttfts.extend(now + res.prefill_latency - r.arrival for r in wave)
        now += total
        latencies.extend(now - r.arrival for r in wave)
        # useful tokens only: the padding to n_max is wasted compute,
        # not serving throughput
        total_tokens += sum(r.gen_len for r in wave)
        wave_batches.append(len(wave))

    if not latencies:
        return _infeasible("wave", rejected)
    lat = np.array(latencies)
    tt = np.array(ttfts)
    if sample_sink is not None:
        sample_sink["latencies"] = lat
        sample_sink["ttfts"] = tt
    return OnlineResult(
        completed=len(latencies),
        makespan=now,
        mean_latency=float(lat.mean()),
        p95_latency=_quantile(lat, 0.95),
        throughput=total_tokens / now,
        waves=len(wave_batches),
        mean_wave_batch=float(np.mean(wave_batches)),
        policy="wave",
        p50_latency=_quantile(lat, 0.50),
        p99_latency=_quantile(lat, 0.99),
        mean_ttft=float(tt.mean()),
        p95_ttft=_quantile(tt, 0.95),
        rejected=rejected,
        mean_inflight=float(np.mean(wave_batches)),
    )


def _simulate_continuous(
    plan: "ExecutionPlan",
    cluster: "Cluster",
    reqs: "list[OnlineRequest]",
    *,
    max_batch: int | None,
    engine: str,
    scm: StageCostModel,
    source: str = "kernels",
    latency_model: "LatencyModel | None" = None,
    drift: "DriftConfig | None" = None,
    replanner: "Replanner | None" = None,
    sample_sink: "dict | None" = None,
) -> OnlineResult:
    if engine == "des":
        from .pipeline_des import iteration_makespan_des

    def _price(units: list[np.ndarray]) -> float:
        if engine == "des":
            return float(iteration_makespan_des(units))
        return float(units[0].sum() + sum(u.max() for u in units[1:]))

    detector = None
    if drift is not None:
        from ..runtime.replan import DriftDetector

        detector = DriftDetector(drift)
    headroom = scm.kv_headroom()
    used = np.zeros(plan.num_stages)

    pending: deque = deque(reqs)
    active: list[dict] = []
    now = 0.0
    next_idx = 0  # sorted-trace row of the next pending request
    latencies: list[float] = []
    ttfts: list[float] = []
    lat_idx: list[int] = []
    tt_idx: list[int] = []
    total_tokens = 0
    rejected = 0
    iterations = 0
    inflight_samples: list[int] = []
    arrival_ptr = 0
    drift_triggers = migrations = replans = 0
    migration_seconds = 0.0

    while pending or active:
        if not active and pending and pending[0].arrival > now:
            now = pending[0].arrival  # jump the idle gap

        # ---- admission at this token boundary (FIFO, head-of-line) ----
        newly: list[dict] = []
        while pending and pending[0].arrival <= now:
            if max_batch is not None and len(active) + len(newly) >= max_batch:
                break
            r = pending[0]
            charge = scm.request_kv_bytes(r.prompt_len, r.gen_len)
            if np.any(used + charge > headroom + 1e-6):
                if not active and not newly:
                    # alone in an empty system and still unfit: never fits
                    pending.popleft()
                    next_idx += 1
                    rejected += 1
                    continue
                break
            pending.popleft()
            used += charge
            newly.append(
                {"req": r, "produced": 0, "charge": charge, "idx": next_idx}
            )
            next_idx += 1
        if not newly and not active:
            continue

        # ---- one iteration: fused decode + batch-1 prefills ------------
        units: list[np.ndarray] = []
        if active:
            ctx = float(
                np.mean([a["req"].prompt_len + a["produced"] for a in active])
            )
            units.append(scm.unit_decode_times(len(active), ctx))
        for a in newly:
            units.append(scm.unit_prefill_times(a["req"].prompt_len))
        step = _price(units)
        now += step
        iterations += 1
        inflight_samples.append(len(active) + len(newly))

        for a in active:
            a["produced"] += 1
        for a in newly:
            a["produced"] = 1
            ttfts.append(now - a["req"].arrival)
            tt_idx.append(a["idx"])
        active.extend(newly)

        still: list[dict] = []
        for a in active:
            if a["produced"] >= a["req"].gen_len:
                # retire at the boundary: the refund is immediately
                # available to the next admission
                latencies.append(now - a["req"].arrival)
                lat_idx.append(a["idx"])
                total_tokens += a["req"].gen_len
                used -= a["charge"]
            else:
                still.append(a)
        active = still

        # ---- drift detection at the boundary (mirrors the runtime) ----
        if detector is not None:
            while arrival_ptr < len(reqs) and reqs[arrival_ptr].arrival <= now:
                r = reqs[arrival_ptr]
                detector.observe_arrival(r.arrival, r.prompt_len, r.gen_len)
                arrival_ptr += 1
            mask = headroom > 0
            occ = float(np.max(used[mask] / headroom[mask])) if mask.any() else 0.0
            detector.observe_occupancy(now, occ)
            est = detector.poll(now)
            if est is None:
                continue
            drift_triggers += 1
            if replanner is None:
                continue
            new_plan = replanner(plan, est)
            if new_plan is None:
                continue
            # ---- mirrored migration: re-price, pause, re-home ---------
            if new_plan.stages == plan.stages:
                new_scm = scm.derive(new_plan)
                pause = 0.0  # metadata-only switch: no shards re-cut
            else:
                new_scm = StageCostModel(
                    new_plan, cluster, source=source,
                    latency_model=latency_model,
                    decode_batching=scm.decode_batching,
                )
                # shard rebuild + pipelined replay of in-flight KV state,
                # priced exactly like the iterations it re-runs
                pause = drift.rebuild_seconds
                if active:
                    pause += _price([
                        new_scm.unit_prefill_times(a["req"].prompt_len)
                        for a in active
                    ])
                    max_prod = max(a["produced"] for a in active)
                    for k in range(1, max_prod):
                        group = [a for a in active if a["produced"] > k]
                        ctx = float(np.mean(
                            [a["req"].prompt_len + k for a in group]
                        ))
                        pause += _price(
                            [new_scm.unit_decode_times(len(group), ctx)]
                        )
            now += pause
            migration_seconds += pause
            migrations += 1
            replans += 1
            plan, scm = new_plan, new_scm
            headroom = scm.kv_headroom()
            used = np.zeros(plan.num_stages)
            for a in active:
                a["charge"] = scm.request_kv_bytes(
                    a["req"].prompt_len, a["req"].gen_len
                )
                used += a["charge"]
            detector.rebaseline(now)

    if not latencies:
        if sample_sink is not None:
            sample_sink["latencies"] = np.empty(0)
            sample_sink["ttfts"] = np.empty(0)
            sample_sink["lat_idx"] = np.empty(0, dtype=np.int64)
            sample_sink["tt_idx"] = np.empty(0, dtype=np.int64)
        return _infeasible("continuous", rejected)
    lat = np.array(latencies)
    tt = np.array(ttfts)
    if sample_sink is not None:
        sample_sink["latencies"] = lat
        sample_sink["ttfts"] = tt
        sample_sink["lat_idx"] = np.array(lat_idx, dtype=np.int64)
        sample_sink["tt_idx"] = np.array(tt_idx, dtype=np.int64)
    return OnlineResult(
        completed=len(latencies),
        makespan=now,
        mean_latency=float(lat.mean()),
        p95_latency=_quantile(lat, 0.95),
        throughput=total_tokens / now,
        waves=0,
        mean_wave_batch=0.0,
        policy="continuous",
        p50_latency=_quantile(lat, 0.50),
        p99_latency=_quantile(lat, 0.99),
        mean_ttft=float(tt.mean()),
        p95_ttft=_quantile(tt, 0.95),
        rejected=rejected,
        iterations=iterations,
        mean_inflight=float(np.mean(inflight_samples)),
        drift_triggers=drift_triggers,
        migrations=migrations,
        replans=replans,
        migration_seconds=migration_seconds,
    )


def simulate_online(
    plan: "ExecutionPlan",
    cluster: "Cluster",
    trace: Sequence[OnlineRequest],
    *,
    max_batch: int | None = None,
    policy: str = "wave",
    engine: str = "analytic",
    source: str = "kernels",
    latency_model: "LatencyModel | None" = None,
    cost_model: StageCostModel | None = None,
    decode_batching: str | None = None,
    drift: "DriftConfig | None" = None,
    replanner: "Replanner | None" = None,
    force_general: bool = False,
    sample_sink: "dict | None" = None,
) -> OnlineResult:
    """Serve ``trace`` on ``plan``'s pipeline under a scheduling policy.

    ``policy="wave"`` batches queued requests into padded waves (the
    offline discipline applied online); ``policy="continuous"`` admits
    and retires requests at token boundaries.  ``max_batch`` is an
    optional hard concurrency cap on top of the memory model — with the
    wave policy it reproduces the legacy count-capped behaviour exactly.
    ``engine="des"`` prices each wave / iteration with the event-driven
    simulator instead of the closed form.  The continuous policy runs
    through the vectorized event-batch engine
    (:mod:`repro.sim.trace_engine`), which replays million-request
    traces in seconds; ``engine="reference"`` / ``"reference-des"``
    select the scalar loop it is checked byte-identical against.
    ``source="model"`` (with a
    fitted ``latency_model``) prices with the planner's cost model
    instead of the ground-truth kernels; ``cost_model`` shares an
    existing :class:`StageCostModel`'s tables.
    ``decode_batching`` selects the decode execution mode being priced:
    ``"fused"`` (the runtime default — one weight stream per iteration)
    or ``"per-request"`` (``b`` sequential batch-1 messages).  ``None``
    inherits ``cost_model``'s mode (fused for a fresh model); passing
    both a ``cost_model`` and a conflicting mode is an error.  Accepts any records with
    ``arrival`` / ``prompt_len`` / ``gen_len`` attributes, including
    :class:`~repro.workload.traces.RequestArrival`.

    ``drift`` (a :class:`~repro.runtime.replan.DriftConfig`) plus a
    ``replanner`` enable the mirrored live-replanning path (continuous
    policy only): the same :class:`~repro.runtime.replan.DriftDetector`
    the real scheduler uses watches the trace, and a trigger switches
    the plan mid-run — charging ``drift.rebuild_seconds`` plus the
    analytically priced replay of in-flight KV state when the new plan
    re-cuts shards, so big-model drift studies run without a runtime.

    ``force_general`` (continuous vectorized engine only) disables the
    exact-linear token-budget admission shortcut so the general per-stage
    scan is exercised.  ``sample_sink``, when given a dict, receives the
    raw per-request ``latencies`` / ``ttfts`` arrays (completion order)
    so callers — the fleet layer — can pool exact samples across runs.
    """
    if not len(trace):
        raise ValueError("empty trace")
    if policy not in ("wave", "continuous"):
        raise ValueError(f"unknown policy {policy!r}")
    if engine not in ("analytic", "des", "reference", "reference-des"):
        raise ValueError(f"unknown engine {engine!r}")
    reference = engine in ("reference", "reference-des")
    if reference and policy != "continuous":
        raise ValueError("the reference engine only prices the continuous policy")
    if (drift is not None or replanner is not None) and policy != "continuous":
        raise ValueError("drift replanning requires the continuous policy")
    if decode_batching is not None and decode_batching not in (
        "fused", "per-request"
    ):
        raise ValueError(f"unknown decode_batching {decode_batching!r}")
    if cost_model is None:
        cost_model = StageCostModel(
            plan, cluster, source=source, latency_model=latency_model,
            decode_batching=decode_batching or "fused",
        )
    elif (
        decode_batching is not None
        and cost_model.decode_batching != decode_batching
    ):
        raise ValueError(
            f"cost_model prices decode_batching={cost_model.decode_batching!r} "
            f"but {decode_batching!r} was requested"
        )
    if policy == "continuous":
        if reference:
            reqs = sorted(trace, key=lambda r: r.arrival)
            return _simulate_continuous(
                plan, cluster, reqs, max_batch=max_batch,
                engine="des" if engine == "reference-des" else "analytic",
                scm=cost_model, source=source, latency_model=latency_model,
                drift=drift, replanner=replanner, sample_sink=sample_sink,
            )
        from .trace_engine import simulate_continuous_vectorized, trace_columns

        return simulate_continuous_vectorized(
            plan, cluster, trace_columns(trace), max_batch=max_batch,
            engine=engine, scm=cost_model, source=source,
            latency_model=latency_model, drift=drift, replanner=replanner,
            force_general=force_general, sample_sink=sample_sink,
        )
    reqs = sorted(trace, key=lambda r: r.arrival)
    return _simulate_wave(
        plan, cluster, reqs, max_batch=max_batch, engine=engine,
        scm=cost_model, sample_sink=sample_sink,
    )
