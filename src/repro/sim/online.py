"""Online-serving extension (paper Sec. 7, "Apply to ORCA or vLLM").

LLM-PQ targets the offline task, but the paper's discussion points out
the trade-off an online deployment would face: *"there is always a
trade-off between the speed of quantized operators and the amount of
available memory"* — lower-precision weights free KV-cache memory, which
raises the admissible concurrent batch, which raises throughput under
load.  This module makes that discussion executable with a wave-based
dynamic-batching simulator:

* requests arrive by a Poisson process with ShareGPT-like lengths;
* the server runs *waves*: each wave admits up to ``max_batch`` queued
  requests (bounded by the plan's free KV memory), pads them to the
  longest member prompt, and serves them with the offline pipeline
  simulator;
* per-request latency = completion - arrival; throughput = generated
  tokens / makespan.

It deliberately does not model iteration-level scheduling (ORCA) or
paged KV (vLLM) — the point is the memory/precision trade-off, which
survives either refinement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..cost.memory import stage_memory
from ..hardware.cluster import Cluster
from ..models.registry import get_model
from ..core.plan import ExecutionPlan
from ..workload.spec import Workload
from .pipeline import simulate_pipeline

__all__ = [
    "OnlineRequest",
    "OnlineResult",
    "sample_poisson_trace",
    "max_admissible_batch",
    "simulate_online",
]


@dataclass(frozen=True)
class OnlineRequest:
    """One request of the online stream."""

    arrival: float
    prompt_len: int
    gen_len: int


@dataclass(frozen=True)
class OnlineResult:
    """Aggregate metrics of an online run."""

    completed: int
    makespan: float
    mean_latency: float
    p95_latency: float
    throughput: float  #: generated tokens per second
    waves: int
    mean_wave_batch: float

    def summary(self) -> str:
        """One-line human-readable result."""
        return (
            f"{self.completed} reqs in {self.makespan:.1f}s | "
            f"mean latency {self.mean_latency:.2f}s (p95 {self.p95_latency:.2f}) | "
            f"{self.throughput:.1f} tok/s | "
            f"{self.waves} waves, avg batch {self.mean_wave_batch:.1f}"
        )


def sample_poisson_trace(
    rate: float,
    duration: float,
    *,
    seed: int = 0,
    max_prompt: int = 512,
    max_gen: int = 128,
) -> list[OnlineRequest]:
    """Poisson arrivals with log-normal prompt/generation lengths."""
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    rng = np.random.default_rng(seed)
    out: list[OnlineRequest] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate)
        if t > duration:
            break
        s = int(np.clip(np.exp(rng.normal(4.8, 0.8)), 8, max_prompt))
        n = int(np.clip(np.exp(rng.normal(3.4, 0.6)), 4, max_gen))
        out.append(OnlineRequest(arrival=t, prompt_len=s, gen_len=n))
    return out


def max_admissible_batch(
    plan: ExecutionPlan,
    *,
    prompt_len: int,
    gen_len: int,
    cap: int = 256,
) -> int:
    """Largest concurrent batch the plan's memory headroom admits.

    The Sec.-7 trade-off in one function: each stage's weights are fixed
    by the plan's bitwidths, so the remaining memory bounds the KV cache
    and hence the batch.  Lower-precision plans admit more requests.
    """
    cfg = get_model(plan.model_name)
    kv_bits = int(plan.meta.get("kv_bits", 16))
    best = 0
    for b in range(1, cap + 1):
        ok = True
        for j, stage in enumerate(plan.stages):
            mem = stage_memory(
                cfg, stage.layer_bits,
                global_batch=b, prompt_len=prompt_len, gen_len=gen_len,
                prefill_microbatch=min(plan.prefill_microbatch, b),
                decode_microbatch=min(plan.decode_microbatch, b),
                is_first=(j == 0), is_last=(j == plan.num_stages - 1),
                kv_bits=kv_bits,
            )
            if not mem.fits(stage.device.spec.memory_bytes):
                ok = False
                break
        if not ok:
            break
        best = b
    return best


def simulate_online(
    plan: ExecutionPlan,
    cluster: Cluster,
    trace: Sequence[OnlineRequest],
    *,
    max_batch: int | None = None,
) -> OnlineResult:
    """Wave-based dynamic batching of ``trace`` on ``plan``'s pipeline.

    Each wave serves the queued requests (up to the admissible batch),
    padded to the wave's longest prompt / generation — the offline
    engine's padding discipline applied online.
    """
    if not trace:
        raise ValueError("empty trace")
    reqs = sorted(trace, key=lambda r: r.arrival)
    if max_batch is None:
        s_ref = max(r.prompt_len for r in reqs)
        n_ref = max(r.gen_len for r in reqs)
        max_batch = max_admissible_batch(plan, prompt_len=s_ref, gen_len=n_ref)
    if max_batch <= 0:
        return OnlineResult(
            completed=0, makespan=float("inf"), mean_latency=float("inf"),
            p95_latency=float("inf"), throughput=0.0, waves=0,
            mean_wave_batch=0.0,
        )

    now = 0.0
    i = 0
    latencies: list[float] = []
    total_tokens = 0
    wave_batches: list[int] = []
    while i < len(reqs):
        if reqs[i].arrival > now:
            now = reqs[i].arrival  # idle until next arrival
        wave = [reqs[i]]
        j = i + 1
        while j < len(reqs) and reqs[j].arrival <= now and len(wave) < max_batch:
            wave.append(reqs[j])
            j += 1
        i = j
        s = max(r.prompt_len for r in wave)
        n = max(r.gen_len for r in wave)
        w = Workload(prompt_len=s, gen_len=n, global_batch=len(wave))
        wave_plan = replace(
            plan,
            workload=w,
            prefill_microbatch=min(plan.prefill_microbatch, len(wave)),
            decode_microbatch=min(plan.decode_microbatch, len(wave)),
        )
        res = simulate_pipeline(wave_plan, cluster)
        if not res.feasible:
            raise RuntimeError("wave infeasible despite admissible batch bound")
        now += res.total_latency
        latencies.extend(now - r.arrival for r in wave)
        total_tokens += w.total_generated_tokens
        wave_batches.append(len(wave))

    lat = np.array(latencies)
    return OnlineResult(
        completed=len(reqs),
        makespan=now,
        mean_latency=float(lat.mean()),
        p95_latency=float(np.quantile(lat, 0.95)),
        throughput=total_tokens / now,
        waves=len(wave_batches),
        mean_wave_batch=float(np.mean(wave_batches)),
    )
