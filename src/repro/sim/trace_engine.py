"""Vectorized event-batch engine for the continuous online simulator.

:func:`repro.sim.online.simulate_online`'s continuous policy was written
as a per-token-boundary Python loop: admit, price one iteration, retire,
poll the drift detector — a few hundred microseconds per boundary, which
caps traces at tens of thousands of requests.  This module re-expresses
the *same* simulation as array-based event processing:

* request columns (``arrival`` / ``prompt_len`` / ``gen_len``) stay as
  numpy arrays end to end — per-stage KV charges for the whole trace are
  one :meth:`~repro.cost.stagecosts.StageCostModel.request_kv_bytes_batch`
  call;
* admission at a boundary is a vectorized prefix scan: candidates come
  from one ``searchsorted`` on the arrival column, and the FIFO
  fits-while-admitting loop becomes a row-cumsum against the headroom;
* stretches with no admission are **decode runs**: the retire schedule
  of the in-flight group fully determines every future batch size,
  context mean, and KV refund, so whole runs are priced in one
  :meth:`~repro.cost.stagecosts.StageCostModel.unit_decode_times_batch`
  call and the clock advances by one ``np.add.accumulate``;
* runs truncate at the first *event*: a boundary where the queue head
  could be admitted (memory/cap conditions are monotone within a run, so
  the boundary is found by a couple of searchsorted/argmax calls), the
  drift detector's next window close, or the group draining dry;
* under sustained load the engine switches to **boundary stretches**:
  speculatively schedule up to K admission/retire boundaries against a
  bincount retire ring, price the whole stretch in one batch call, then
  validate and truncate at the first arrival or drift-window crossing
  the schedule missed (K adapts to the observed commit length and the
  time remaining in the drift window);
* when the per-request KV charges are *bitwise* linear in token count —
  verified once when the cost model is bound — per-stage byte admission
  collapses to a single integer token budget and one ``searchsorted``
  per boundary (the per-run ``force_general`` switch disables the
  shortcut so tests also exercise the general per-stage scan).

Every floating-point operation mirrors the scalar loop's order (the
batch cost-model views are bit-for-bit equal to their scalar
counterparts, KV-charge arithmetic is exact in float64, and
``np.add.accumulate`` is the same left fold as ``now += step``), so the
engine returns **byte-identical** :class:`~repro.sim.online.OnlineResult`
values — the scalar loop survives as the equality oracle behind
``engine="reference"``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..cost.stagecosts import StageCostModel

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..core.plan import ExecutionPlan
    from ..cost.latency import LatencyModel
    from ..hardware.cluster import Cluster
    from ..runtime.replan import DriftConfig, Replanner

__all__ = ["trace_columns", "simulate_continuous_vectorized"]

_EMPTY_I8 = np.empty(0, dtype=np.int64)

#: decode-run pricing chunk: start small (most runs truncate within a few
#: boundaries under load), quadruple while the run keeps going
_CHUNK0 = 8
_CHUNK_GROW = 4

#: speculative stretch sizing (boundaries scheduled before pricing)
_STRETCH0 = 8
_STRETCH_MAX = 8192



def trace_columns(trace) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(arrivals, prompt_lens, gen_lens)`` sorted by arrival (stable).

    :class:`~repro.workload.traces.ArrivalTrace` inputs pass their
    columns through without materializing per-request objects; any other
    sequence of arrival records is converted field by field.  The stable
    argsort matches ``sorted(trace, key=lambda r: r.arrival)`` tie for
    tie, so both engines see the same FIFO order.
    """
    from ..workload.traces import ArrivalTrace

    if isinstance(trace, ArrivalTrace):
        a, s, g = trace.arrivals, trace.prompt_lens, trace.gen_lens
    else:
        a = np.array([r.arrival for r in trace], dtype=np.float64)
        s = np.array([r.prompt_len for r in trace], dtype=np.int64)
        g = np.array([r.gen_len for r in trace], dtype=np.int64)
    order = np.argsort(a, kind="stable")
    return (
        np.ascontiguousarray(a[order]),
        np.ascontiguousarray(s[order]),
        np.ascontiguousarray(g[order]),
    )


class _Engine:
    """One simulation run's mutable state (arrays, clock, counters)."""

    def __init__(
        self,
        plan: "ExecutionPlan",
        cluster: "Cluster",
        columns: tuple[np.ndarray, np.ndarray, np.ndarray],
        *,
        max_batch: int | None,
        engine: str,
        scm: StageCostModel,
        source: str,
        latency_model: "LatencyModel | None",
        drift: "DriftConfig | None",
        replanner: "Replanner | None",
        force_general: bool = False,
        sample_sink: "dict | None" = None,
    ) -> None:
        # per-run switch (replaces the old module-level ``_FORCE_GENERAL``
        # mutable global, which made concurrent replica engines in one
        # process trample each other): disable the exact-linear
        # token-budget fast path so the general per-stage admission
        # arithmetic stays exercised
        self.force_general = force_general
        self.sample_sink = sample_sink
        self.plan = plan
        self.cluster = cluster
        self.arr, self.spr, self.sgen = columns
        self.n_req = self.arr.size
        self._toks = self.spr + self.sgen
        self._uniq_toks = np.unique(self._toks)
        zero = np.zeros(1, dtype=np.int64)
        self._cumq = np.concatenate((zero, np.cumsum(self._toks)))
        self._cumspr = np.concatenate((zero, np.cumsum(self.spr)))
        self.max_batch = max_batch
        self.des = engine == "des"
        if self.des:
            from .pipeline_des import (
                iteration_makespan_des,
                iteration_makespan_des_batch,
            )

            self._des_one = iteration_makespan_des
            self._des_rows = iteration_makespan_des_batch
        self.scm = scm
        self.source = source
        self.latency_model = latency_model
        self.drift = drift
        self.replanner = replanner

        self.detector = None
        self.win_end = float("inf")
        if drift is not None:
            from ..runtime.replan import DriftDetector

            self.detector = DriftDetector(drift)
            self.win_end = self.detector.next_window_end()

        self._bind_cost_model(scm)
        self.used = np.zeros(plan.num_stages)

        # speculative stretch sizing: grows while stretches commit fully,
        # shrinks (and briefly pauses) when the saturation bet misses
        self._stretch_k = _STRETCH0
        self._stretch_block = 0
        self._adm_hint = _CHUNK0 * 8
        self._step_hint = 0.0
        self._smax = int(self.sgen.max(initial=1))

        # active set, admission order: request index + tokens produced
        self.a_idx = _EMPTY_I8
        self.a_prod = _EMPTY_I8
        self.ptr = 0  # queue head: requests [ptr, n_req) still pending
        self.obs_ptr = 0  # arrivals already flushed to the detector
        self.now = 0.0
        self.lat_parts: list[np.ndarray] = []
        self.tt_parts: list[np.ndarray] = []
        # request indices aligned with lat/tt parts (sorted-trace order),
        # so sample_sink consumers can join samples back to requests
        self.lat_idx_parts: list[np.ndarray] = []
        self.tt_idx_parts: list[np.ndarray] = []
        self.obs_t: list[float] = []
        self.obs_v: list[float] = []
        self.total_tokens = 0
        self.rejected = 0
        self.iterations = 0
        self.inflight_sum = 0
        self.drift_triggers = 0
        self.migrations = 0
        self.replans = 0
        self.migration_seconds = 0.0

    # -- cost-model-dependent tables ------------------------------------
    def _bind_cost_model(self, scm: StageCostModel) -> None:
        """(Re)derive every table keyed by the current plan's cost model."""
        self.scm = scm
        self.headroom = scm.kv_headroom()
        self.hb = self.headroom + 1e-6
        self.occ_mask = self.headroom > 0
        # rows below the queue head / oldest in-flight request are never
        # read again — skip recomputing them when a migration rebinds
        lo = 0
        if hasattr(self, "a_idx"):
            lo = self.ptr
            if self.a_idx.size:
                m = int(self.a_idx.min())
                if m < lo:
                    lo = m
        if lo:
            rows = scm.request_kv_bytes_batch(self._toks[lo:])
            self.charges = np.empty((self.n_req, rows.shape[1]))
            self.charges[lo:] = rows
        else:
            self.charges = scm.request_kv_bytes_batch(self._toks)
        # exact-linear KV charges (row == toks * per-token vector,
        # bitwise) collapse stretch admission to a scalar integer token
        # budget: the largest T with T * kvc_j <= headroom_j for all j
        self._kvc = None
        self._tok_budget = 0
        if self._uniq_toks.size and not self.force_general:
            kvc = scm.request_kv_bytes_batch(np.ones(1, dtype=np.int64))[0]
            rows = scm.request_kv_bytes_batch(self._uniq_toks)
            if (kvc > 0).all() and np.array_equal(
                rows, self._uniq_toks[:, None] * kvc
            ):
                budget = None
                for j in range(kvc.size):
                    cj = float(kvc[j])
                    hbj = float(self.hb[j])
                    tj = int(hbj // cj)
                    while (tj + 1) * cj <= hbj:
                        tj += 1
                    while tj > 0 and tj * cj > hbj:
                        tj -= 1
                    budget = tj if budget is None else min(budget, tj)
                self._kvc = kvc
                self._tok_budget = budget
        self._pf_sum: dict[int, float] = {}
        self._pf_max: dict[int, float] = {}
        self._pfmax_table = np.full(
            int(self.spr.max(initial=0)) + 1, np.nan
        )

    def _prefill_consts(self, prompt_len: int) -> tuple[float, float]:
        """Memoized ``(sum, max)`` of the batch-1 prefill unit at ``s``."""
        s = self._pf_sum.get(prompt_len)
        if s is None:
            u = self.scm.unit_prefill_times(prompt_len)
            s = float(u.sum())
            self._pf_sum[prompt_len] = s
            self._pf_max[prompt_len] = float(u.max())
        return s, self._pf_max[prompt_len]

    def _pf_max_run(self, p0: int, p1: int) -> np.ndarray:
        """Per-request batch-1 prefill stage-max for requests [p0, p1)."""
        lens = self.spr[p0:p1]
        vals = self._pfmax_table[lens]
        hole = np.isnan(vals)
        if hole.any():
            for s in np.unique(lens[hole]).tolist():
                self._pfmax_table[s] = self._prefill_consts(s)[1]
            vals = self._pfmax_table[lens]
        return vals

    # -- admission ------------------------------------------------------
    def _admission_scan(self) -> np.ndarray:
        """Batched mirror of the scalar FIFO admission while-loop.

        Admits the longest arrived prefix whose cumulative KV charge
        stays under the headroom (one cumsum + argmin per pass), caps at
        ``max_batch``, and — only while the system is completely empty —
        rejects queue heads that cannot fit even alone.
        """
        arr, charges, hb = self.arr, self.charges, self.hb
        b0 = self.a_idx.size
        parts: list[np.ndarray] = []
        count = 0
        chunk = _CHUNK0 * 8
        q = int(np.searchsorted(arr, self.now, side="right"))
        while self.ptr < q:
            if self.max_batch is None:
                room = q - self.ptr
            else:
                room = self.max_batch - b0 - count
                if room <= 0:
                    break
            m = min(q - self.ptr, room, chunk)
            chunk *= _CHUNK_GROW
            rows = charges[self.ptr:self.ptr + m]
            cum = self.used + np.cumsum(rows, axis=0)
            ok = np.all(cum <= hb, axis=1)
            k = m if ok.all() else int(np.argmin(ok))
            if k > 0:
                parts.append(np.arange(self.ptr, self.ptr + k, dtype=np.int64))
                self.used = cum[k - 1].copy()
                self.ptr += k
                count += k
                if k < m:
                    break  # blocked with work in flight: stop admitting
                continue
            if b0 + count == 0:
                # alone in an empty system and still unfit: never fits —
                # drop the leading run of solo-unfit heads
                solo = np.all(self.used + rows <= hb, axis=1)
                r = m if not solo.any() else int(np.argmax(solo))
                self.ptr += r
                self.rejected += r
                continue
            break
        if not parts:
            return _EMPTY_I8
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    # -- one admission iteration (fused decode + batch-1 prefills) ------
    def _admission_iteration(self, admitted: np.ndarray) -> None:
        scm = self.scm
        b = self.a_idx.size
        new_prompts = self.spr[admitted]
        if b:
            s_ctx = int((self.spr[self.a_idx] + self.a_prod).sum())
            ctx = float(s_ctx) / float(b)
            dec = scm.unit_decode_times(b, ctx)
        if self.des:
            units = [dec] if b else []
            units.extend(scm.unit_prefill_times(int(p)) for p in new_prompts)
            step = float(self._des_one(units))
        else:
            plist = new_prompts.tolist()
            if b:
                head = dec.sum()
                rest = plist
            else:
                head, _ = self._prefill_consts(plist[0])
                rest = plist[1:]
            tail = 0
            for p in rest:
                tail = tail + self._prefill_consts(p)[1]
            step = float(head + tail)
        self.now += step
        self.iterations += 1
        self.inflight_sum += b + admitted.size
        self.tt_parts.append(self.now - self.arr[admitted])
        self.tt_idx_parts.append(admitted)
        self.a_idx = np.concatenate((self.a_idx, admitted))
        self.a_prod = np.concatenate(
            (self.a_prod + 1, np.ones(admitted.size, dtype=np.int64))
        )
        self._retire()
        self._observe_boundary()

    def _retire(self) -> None:
        fin = self.a_prod >= self.sgen[self.a_idx]
        if fin.any():
            fidx = self.a_idx[fin]
            self.lat_parts.append(self.now - self.arr[fidx])
            self.lat_idx_parts.append(fidx)
            self.total_tokens += int(self.sgen[fidx].sum())
            self.used = self.used - self.charges[fidx].sum(axis=0)
            keep = ~fin
            self.a_idx = self.a_idx[keep]
            self.a_prod = self.a_prod[keep]

    # -- speculative event-batch stretches ------------------------------
    def _ring_add(self, ring_cnt: np.ndarray, ring_tok: np.ndarray,
                  ring_chg: "np.ndarray | None", fins: np.ndarray,
                  toks: np.ndarray, chg: "np.ndarray | None") -> None:
        """Accumulate per-boundary retire contributions into the ring.

        One ``np.bincount`` per column over the (narrow) span of finish
        boundaries — every summed quantity (counts, token sums, KV
        charges) is exact in float64, so the grouping order cannot
        change the result.  ``ring_chg``/``chg`` are only carried on the
        general path; the linear path recovers KV charges from token
        counts.
        """
        lo = int(fins.min())
        span = int(fins.max()) - lo + 1
        off = fins - lo
        stop = lo + span
        ring_cnt[lo:stop] += np.bincount(off, minlength=span)
        ring_tok[lo:stop] += np.bincount(off, weights=toks, minlength=span)
        if ring_chg is not None:
            block = ring_chg[lo:stop]
            for j in range(chg.shape[1]):
                block[:, j] += np.bincount(
                    off, weights=chg[:, j], minlength=span
                )

    def _stretch(self) -> int:
        """Schedule up to K boundaries speculatively, price them in one
        batch, and commit the longest valid prefix.

        While the queue outpaces the pipeline, admission depends only on
        KV memory and the concurrency cap — never on the clock — so the
        admit/retire schedule of many future boundaries is pure integer
        and byte arithmetic: no cost model in the loop, one
        :meth:`unit_decode_times_batch` call for every boundary's decode
        group, one ``np.add.accumulate`` to recover the clock, and bulk
        appends for TTFTs, latencies, and drift observations.  Boundary
        1 admissions are gated on the truly-arrived set, so at least one
        boundary always commits; later boundaries whose admissions turn
        out to include requests that had not yet arrived at scan time
        are discarded and re-run through the exact paths.  Stretches
        also truncate at drift-window crossings (the detector poll can
        migrate the plan, invalidating the speculated schedule).
        """
        arr, spr, sgen, charges = self.arr, self.spr, self.sgen, self.charges
        hb = self.hb
        n = self.used.size
        a_idx, a_prod = self.a_idx, self.a_prod
        b0 = a_idx.size
        K = self._stretch_k
        now0 = self.now
        if self.detector is not None and self._step_hint > 0.0:
            # the drift window will truncate the stretch anyway — don't
            # schedule (and then discard) boundaries far past it
            kw = int((self.win_end - now0) / self._step_hint) + 2
            if kw < K:
                K = kw if kw > _STRETCH0 else _STRETCH0

        linear = self._kvc is not None
        # retire ring seeded from the in-flight group: boundary t
        # (1-based) retires requests with rel == t; columns are
        # [count, sum(prompt+gen)] — plus per-stage KV charge on the
        # general path (the linear path derives KV from token counts)
        rel0 = sgen[a_idx] - a_prod
        m0 = rel0 <= K
        rel0m = rel0[m0]
        ring_cnt = np.zeros(K + 2, dtype=np.int64)
        ring_tok = np.zeros(K + 2)
        ring_chg = None if linear else np.zeros((K + 2, n))
        if rel0m.size:
            self._ring_add(ring_cnt, ring_tok, ring_chg, rel0m,
                           self._toks[a_idx][m0],
                           None if linear else charges[a_idx[m0]])

        ptr0 = self.ptr
        ptr_l = ptr0
        used_l = self.used
        b_l = b0
        s_l = int((spr[a_idx] + a_prod).sum())
        q1 = int(np.searchsorted(arr, self.now, side="right"))

        b_rec = np.empty(K + 1, dtype=np.int64)
        s_rec = np.empty(K + 1, dtype=np.float64)
        ptr_rec = np.empty(K + 1, dtype=np.int64)
        held_rec = np.empty(K + 1, dtype=np.int64) if linear else None
        used_rec = None if linear else np.empty((K + 1, n))
        ptr_rec[0] = ptr0
        n_req, max_batch = self.n_req, self.max_batch
        cumq, cumspr = self._cumq, self._cumspr
        if linear:
            # in-flight token slots: ``used`` is an exact multiple of the
            # per-token charge vector, so the quotient is an exact integer
            held = int(round(float(used_l[0]) / float(self._kvc[0])))
            budget = self._tok_budget
        L = 0
        for t in range(1, K + 1):
            b_rec[t] = b_l
            s_rec[t] = float(s_l)
            # FIFO admission against memory/cap; boundary 1 sees only
            # requests that have really arrived, later boundaries bet on
            # a deep backlog (checked after pricing)
            lim = q1 if t == 1 else n_req
            t0_ptr = ptr_l
            count = 0
            if linear:
                if ptr_l < lim:
                    hi = (
                        int(
                            np.searchsorted(
                                cumq,
                                cumq[ptr_l] + (budget - held),
                                side="right",
                            )
                        )
                        - 1
                    )
                    p = hi if hi < lim else lim
                    if max_batch is not None and p - ptr_l > max_batch - b_l:
                        p = ptr_l + (max_batch - b_l)
                    if p > ptr_l:
                        count = p - ptr_l
                        held += int(cumq[p] - cumq[ptr_l])
                        ptr_l = p
            else:
                chunk = self._adm_hint
                while ptr_l < lim:
                    if max_batch is None:
                        room = lim - ptr_l
                    else:
                        room = max_batch - b_l - count
                        if room <= 0:
                            break
                    m = min(lim - ptr_l, room, chunk)
                    chunk *= _CHUNK_GROW
                    rows = charges[ptr_l:ptr_l + m]
                    cum = used_l + np.cumsum(rows, axis=0)
                    ok = (cum <= hb).all(axis=1)
                    k = m if ok.all() else int(np.argmin(ok))
                    if k == 0:
                        break
                    used_l = cum[k - 1]
                    ptr_l += k
                    count += k
                    if k < m:
                        break
            ptr_rec[t] = ptr_l
            s_l += b_l + count
            if count:
                s_l += int(cumspr[ptr_l] - cumspr[t0_ptr])
                b_l += count
                gs = sgen[t0_ptr:ptr_l]
                if t + self._smax <= K + 1:
                    self._ring_add(ring_cnt, ring_tok, ring_chg,
                                   t + gs - 1,
                                   self._toks[t0_ptr:ptr_l],
                                   None if linear else charges[t0_ptr:ptr_l])
                else:
                    fins = t + gs - 1
                    fm = fins <= K
                    if fm.any():
                        self._ring_add(
                            ring_cnt, ring_tok, ring_chg, fins[fm],
                            self._toks[t0_ptr:ptr_l][fm],
                            None if linear else charges[t0_ptr:ptr_l][fm],
                        )
                if not linear:
                    self._adm_hint = max(_CHUNK0 * 8, count + (count >> 2))
            c = int(ring_cnt[t])
            if c:
                b_l -= c
                rt = int(ring_tok[t])
                s_l -= rt
                if linear:
                    held -= rt
                else:
                    used_l = used_l - ring_chg[t]
            if linear:
                held_rec[t] = held
            else:
                used_rec[t] = used_l
            L = t
            if b_l == 0:
                break

        # ---- price all boundaries in one batch ------------------------
        bL = b_rec[1:L + 1]
        ctx = s_rec[1:L + 1] / bL
        rows = self.scm.unit_decode_times_batch(bL, ctx)
        step = rows.sum(axis=1)
        reps = np.diff(ptr_rec[:L + 1])
        has = reps > 0
        if has.any():
            maxes = self._pf_max_run(ptr0, int(ptr_rec[L]))
            starts = ptr_rec[:L][has] - ptr0
            # per-segment left fold: ``np.add.reduceat`` sums pairwise,
            # which drifts a ULP from the scalar loop's ``tail += pf``
            # chain — ``np.add.accumulate`` is the exact same fold
            bounds = np.append(starts, maxes.size)
            tails = np.empty(starts.size)
            for k in range(starts.size):
                seg = maxes[bounds[k]:bounds[k + 1]]
                tails[k] = seg[0] if seg.size == 1 else np.add.accumulate(seg)[-1]
            step = step.copy()
            step[has] = step[has] + tails
        now_t = np.add.accumulate(np.concatenate(((self.now,), step)))[1:]

        # ---- longest valid prefix -------------------------------------
        lim_v = L
        if has.any():
            prev_now = np.concatenate(((self.now,), now_t[:-1]))
            hidx = np.flatnonzero(has)
            last_arr = arr[ptr_rec[1:L + 1][has] - 1]
            bad = np.flatnonzero(last_arr > prev_now[hidx])
            if bad.size:
                lim_v = int(hidx[bad[0]])  # commit strictly before it
        flush = False
        M = lim_v
        if self.detector is not None:
            c = int(np.searchsorted(now_t[:lim_v], self.win_end, side="left"))
            if c < lim_v:
                M = c + 1  # poll right after the crossing boundary
                flush = True

        # ---- commit ---------------------------------------------------
        reps_m = reps[:M]
        ptr_m = int(ptr_rec[M])
        self.iterations += M
        self.inflight_sum += int(b_rec[1:M + 1].sum() + reps_m.sum())
        self.now = float(now_t[M - 1])
        self._step_hint = (self.now - now0) / M
        # exact products: held * kvc is bitwise the scalar loop's running
        # add/sub chain of per-request charges
        self.used = (
            held_rec[M] * self._kvc if linear else used_rec[M].copy()
        )
        self.ptr = ptr_m
        adm_idx = np.arange(ptr0, ptr_m, dtype=np.int64)
        if ptr_m > ptr0:
            self.tt_parts.append(
                np.repeat(now_t[:M], reps_m) - arr[ptr0:ptr_m]
            )
            self.tt_idx_parts.append(adm_idx)
        t_admit = np.repeat(np.arange(1, M + 1, dtype=np.int64), reps_m)
        adm_fin = t_admit + sgen[ptr0:ptr_m] - 1
        pre_f = rel0 <= M
        adm_f = adm_fin <= M
        fidx = np.concatenate((a_idx[pre_f], adm_idx[adm_f]))
        if fidx.size:
            fbound = np.concatenate((rel0[pre_f], adm_fin[adm_f]))
            o = np.argsort(fbound, kind="stable")
            fo = fidx[o]
            self.lat_parts.append(now_t[fbound[o] - 1] - arr[fo])
            self.lat_idx_parts.append(fo)
            self.total_tokens += int(sgen[fidx].sum())
        keep_pre = ~pre_f
        adm_keep = ~adm_f
        self.a_idx = np.concatenate((a_idx[keep_pre], adm_idx[adm_keep]))
        self.a_prod = np.concatenate(
            (a_prod[keep_pre] + M, (M + 1) - t_admit[adm_keep])
        )

        if self.detector is not None:
            um = (
                held_rec[1:M + 1, None] * self._kvc
                if linear
                else used_rec[1:M + 1]
            )
            if self.occ_mask.any():
                occ = (
                    um[:, self.occ_mask] / self.headroom[self.occ_mask]
                ).max(axis=1)
                self.obs_v.extend(occ.tolist())
            else:
                self.obs_v.extend([0.0] * M)
            self.obs_t.extend(now_t[:M].tolist())
            if flush:
                self._flush_and_poll()

        if M == K:
            self._stretch_k = min(K * _CHUNK_GROW, _STRETCH_MAX)
        else:
            # size the next bet near what actually committed
            self._stretch_k = max(_STRETCH0, 1 << int(M).bit_length())
            if M < 4:
                # the saturation bet is missing: let the exact paths run
                # a while before speculating again
                self._stretch_block = self.iterations + 12
        return M

    # -- decode runs ----------------------------------------------------
    def _decode_run(self) -> None:
        """Execute decode-only boundaries up to the next event.

        The in-flight group's retire schedule pins down the whole run:
        request ``j`` (``rem_j`` tokens left) leaves at boundary
        ``rem_j``, so batch size, context mean, and released KV bytes at
        every future boundary are closed-form in the retire counts.  The
        three truncation conditions are each monotone within the run —
        the queue head's arrival (the clock only moves forward), its KV
        fit (memory is only released), and the concurrency cap (the
        group only shrinks) — so the first admission boundary is a
        ``max`` of three first-crossing indices, not a scan.
        """
        arr = self.arr
        a_idx, a_prod = self.a_idx, self.a_prod
        b = a_idx.size
        rem = self.sgen[a_idx] - a_prod
        horizon = int(rem.max())
        head = self.ptr if self.ptr < self.n_req else None
        arrived = head is not None and arr[head] <= self.now

        # ---- fast path: the run is a single boundary ------------------
        # Saturated steady state hits this almost every time: the queue
        # head is waiting and fits as soon as this boundary's retirees
        # release their KV (fit/cap are monotone, so checking boundary 1
        # settles ``max(fit_at, 1) == 1``).  Skips the full-schedule
        # construction below.
        if arrived or horizon == 1:
            leave1 = rem == 1
            rel1 = self.charges[a_idx[leave1]].sum(axis=0)
            if horizon == 1:
                fast = True
            else:
                ok = np.all(
                    (self.used - rel1) + self.charges[head] <= self.hb
                )
                if self.max_batch is not None:
                    ok = ok and (
                        b - int(np.count_nonzero(leave1)) < self.max_batch
                    )
                fast = bool(ok)
            if fast:
                base_sum = (self.spr[a_idx] + a_prod).sum()
                ctx0 = float(base_sum) / float(b)
                dec = self.scm.unit_decode_times(b, ctx0)
                step = (
                    self._des_rows(dec[None, :])[0] if self.des else dec.sum()
                )
                self.now = float(self.now + step)
                self.iterations += 1
                self.inflight_sum += b
                if leave1.any():
                    fidx = a_idx[leave1]
                    self.lat_parts.append(self.now - arr[fidx])
                    self.lat_idx_parts.append(fidx)
                    self.total_tokens += int(self.sgen[fidx].sum())
                self.used = self.used - rel1
                keep = ~leave1
                self.a_idx = a_idx[keep]
                self.a_prod = a_prod[keep] + 1
                self._observe_boundary()
                return

        # ---- closed-form schedule over the run horizon ----------------
        ord_ = np.argsort(rem, kind="stable")
        rem_s = rem[ord_]
        pos = np.searchsorted(rem_s, np.arange(horizon + 1), side="right")
        base = self.spr[a_idx] + a_prod
        gone = np.concatenate(
            ((0.0,), np.cumsum(base[ord_].astype(np.float64)))
        )
        steps_i = np.arange(horizon, dtype=np.int64)
        b_i = b - pos[:horizon]  # batch size at boundary i
        ctx_i = ((float(base.sum()) - gone[pos[:horizon]]) + steps_i * b_i) / b_i
        relc = np.concatenate((
            np.zeros((1, self.used.size)),
            np.cumsum(self.charges[a_idx[ord_]], axis=0),
        ))
        rel_i = relc[pos]  # KV released by boundary i

        # ---- first boundary where the queue head could be admitted ----
        fit_at = None  # first boundary with cap room and KV fit
        if head is not None:
            okay = np.all(
                (self.used - rel_i[:horizon]) + self.charges[head] <= self.hb,
                axis=1,
            )
            if self.max_batch is not None:
                okay &= b_i < self.max_batch
            if okay.any():
                fit_at = int(np.argmax(okay))
        t_nom = horizon  # boundaries to execute barring timed events
        if arrived:
            # saturated case: admission timing is memory/cap-gated only
            t_nom = horizon if fit_at is None else min(horizon, max(fit_at, 1))

        # ---- price the run in growing chunks, watching timed events ---
        post_parts: list[np.ndarray] = []
        carry = self.now
        done = 0
        t_run = t_nom
        watch_arrival = head is not None and not arrived
        chunk = t_run if (not watch_arrival and self.detector is None) else _CHUNK0
        while done < t_run:
            stop = min(t_run, done + chunk)
            rows = self.scm.unit_decode_times_batch(
                b_i[done:stop], ctx_i[done:stop]
            )
            step_c = self._des_rows(rows) if self.des else rows.sum(axis=1)
            post_c = np.add.accumulate(np.concatenate(((carry,), step_c)))[1:]
            if watch_arrival:
                # head arrives mid-run: admission at the first boundary
                # past both the arrival and the memory/cap fit point
                j = int(np.searchsorted(post_c, arr[head], side="left"))
                if j < stop - done:
                    watch_arrival = False
                    if fit_at is not None:
                        t_run = min(t_run, max(done + j + 1, fit_at))
            if self.detector is not None:
                j = int(np.searchsorted(post_c, self.win_end, side="left"))
                if j < stop - done and done + j < t_run:
                    t_run = done + j + 1  # poll right after this iteration
            take = min(t_run, stop) - done
            post_parts.append(post_c[:take])
            carry = float(post_c[take - 1])
            done += take
            chunk = min(chunk * _CHUNK_GROW, 65536)

        t_run = done
        now_post = (
            post_parts[0] if len(post_parts) == 1 else np.concatenate(post_parts)
        )
        self.now = float(now_post[t_run - 1])
        self.iterations += t_run
        self.inflight_sum += int(b_i[:t_run].sum())

        # ---- retire everyone whose schedule ended inside the run ------
        # ``ord_`` is stable-sorted by ``rem``, so its prefix is exactly
        # the retirees ordered by (boundary, admission order) — the order
        # the scalar loop appends latencies in.
        n_ret = int(pos[t_run])
        if n_ret:
            ridx = ord_[:n_ret]
            fidx = a_idx[ridx]
            self.lat_parts.append(now_post[rem_s[:n_ret] - 1] - arr[fidx])
            self.lat_idx_parts.append(fidx)
            self.total_tokens += int(self.sgen[fidx].sum())
        used0 = self.used
        self.used = used0 - rel_i[t_run]
        keep = rem > t_run
        self.a_idx = a_idx[keep]
        self.a_prod = a_prod[keep] + t_run

        if self.detector is not None:
            um = used0 - rel_i[1:t_run + 1]
            if self.occ_mask.any():
                occ = (
                    um[:, self.occ_mask] / self.headroom[self.occ_mask]
                ).max(axis=1)
                self.obs_v.extend(occ.tolist())
            else:
                self.obs_v.extend([0.0] * t_run)
            self.obs_t.extend(now_post[:t_run].tolist())
            if self.now >= self.win_end:
                self._flush_and_poll()

    # -- drift detection / live replanning ------------------------------
    def _observe_boundary(self) -> None:
        """Record this boundary's occupancy; poll on window crossings."""
        if self.detector is None:
            return
        if self.occ_mask.any():
            occ = float(
                np.max(self.used[self.occ_mask] / self.headroom[self.occ_mask])
            )
        else:
            occ = 0.0
        self.obs_t.append(self.now)
        self.obs_v.append(occ)
        if self.now >= self.win_end:
            self._flush_and_poll()

    def _flush_and_poll(self) -> None:
        """Deliver batched observations, close windows, maybe migrate.

        The scalar loop observes and polls at every boundary; polls
        strictly inside a window are no-ops, so delivering the buffered
        observations (whose stamps are unchanged) right before the poll
        that closes the window reproduces the same window contents,
        the same triggers, and the same estimates.
        """
        det = self.detector
        k = int(np.searchsorted(self.arr, self.now, side="right"))
        if k > self.obs_ptr:
            det.observe_arrivals(
                self.arr[self.obs_ptr:k],
                self.spr[self.obs_ptr:k],
                self.sgen[self.obs_ptr:k],
            )
            self.obs_ptr = k
        if self.obs_t:
            det.observe_occupancies(self.obs_t, self.obs_v)
            self.obs_t.clear()
            self.obs_v.clear()
        est = det.poll(self.now)
        self.win_end = det.next_window_end()
        if est is None:
            return
        self.drift_triggers += 1
        if self.replanner is None:
            return
        new_plan = self.replanner(self.plan, est)
        if new_plan is None:
            return
        self._migrate(new_plan)

    def _migrate(self, new_plan: "ExecutionPlan") -> None:
        """Mirrored live migration on array state (same pricing as scalar)."""
        if new_plan.stages == self.plan.stages:
            new_scm = self.scm.derive(new_plan)
            pause = 0.0  # metadata-only switch: no shards re-cut
        else:
            new_scm = StageCostModel(
                new_plan, self.cluster, source=self.source,
                latency_model=self.latency_model,
                decode_batching=self.scm.decode_batching,
            )
            pause = self.drift.rebuild_seconds
            if self.a_idx.size:
                pause = self._replay_price(new_scm, pause)
        self.now += pause
        self.migration_seconds += pause
        self.migrations += 1
        self.replans += 1
        self.plan = new_plan
        self._bind_cost_model(new_scm)
        if self.a_idx.size:
            self.used = self.charges[self.a_idx].sum(axis=0)
        else:
            self.used = np.zeros(self.plan.num_stages)
        self.detector.rebaseline(self.now)
        self.win_end = self.detector.next_window_end()

    def _replay_price(self, new_scm: StageCostModel, pause: float) -> float:
        """Pipelined replay of in-flight KV state under the new plan:
        one batch-1 prefill per active request, then the surviving
        decode group re-run token by token — priced exactly like the
        iterations it repeats.  ``pause`` accumulates in the same
        left-fold order as the scalar loop's ``pause +=`` chain."""
        prompts = self.spr[self.a_idx]
        plist = prompts.tolist()
        if self.des:
            units = [new_scm.unit_prefill_times(int(p)) for p in plist]
            pause = pause + float(self._des_one(units))
        else:
            head = new_scm.unit_prefill_times(plist[0]).sum()
            tail = 0
            for p in plist[1:]:
                tail = tail + new_scm.unit_prefill_times(p).max()
            pause = pause + float(head + tail)
        max_prod = int(self.a_prod.max())
        if max_prod > 1:
            cnt = np.bincount(self.a_prod, minlength=max_prod + 1)
            wsum = np.bincount(
                self.a_prod, weights=prompts, minlength=max_prod + 1
            )
            above = self.a_idx.size - np.cumsum(cnt)
            s_above = float(prompts.sum()) - np.cumsum(wsum)
            ks = np.arange(1, max_prod, dtype=np.int64)
            b_k = above[1:max_prod]
            ctx_k = (s_above[1:max_prod] + ks * b_k) / b_k
            rows = new_scm.unit_decode_times_batch(b_k, ctx_k)
            prices = self._des_rows(rows) if self.des else rows.sum(axis=1)
            for v in prices.tolist():
                pause = pause + v
        return pause

    # -- main loop ------------------------------------------------------
    def run(self):
        from ..stats import quantile
        from .online import OnlineResult, _infeasible

        arr = self.arr
        while self.ptr < self.n_req or self.a_idx.size:
            if not self.a_idx.size:
                if self.ptr < self.n_req and arr[self.ptr] > self.now:
                    self.now = float(arr[self.ptr])  # jump the idle gap
                admitted = self._admission_scan()
                if admitted.size:
                    self._admission_iteration(admitted)
                continue
            if (
                not self.des
                and self.ptr < self.n_req
                and arr[self.ptr] <= self.now
                and self.iterations >= self._stretch_block
            ):
                if self._stretch():
                    continue
            admitted = self._admission_scan()
            if admitted.size:
                self._admission_iteration(admitted)
            else:
                self._decode_run()

        if not self.lat_parts:
            if self.sample_sink is not None:
                self.sample_sink["latencies"] = np.empty(0)
                self.sample_sink["ttfts"] = np.empty(0)
                self.sample_sink["lat_idx"] = _EMPTY_I8
                self.sample_sink["tt_idx"] = _EMPTY_I8
            return _infeasible("continuous", self.rejected)
        lat = (
            self.lat_parts[0]
            if len(self.lat_parts) == 1
            else np.concatenate(self.lat_parts)
        )
        tt = (
            self.tt_parts[0]
            if len(self.tt_parts) == 1
            else np.concatenate(self.tt_parts)
        )
        if self.sample_sink is not None:
            # completion-order per-request samples for fleet-level pooling
            # (percentiles and SLO attainment are order-independent); the
            # idx arrays join each sample back to its sorted-trace row
            self.sample_sink["latencies"] = lat
            self.sample_sink["ttfts"] = tt
            self.sample_sink["lat_idx"] = np.concatenate(self.lat_idx_parts)
            self.sample_sink["tt_idx"] = np.concatenate(self.tt_idx_parts)
        return OnlineResult(
            completed=lat.size,
            makespan=self.now,
            mean_latency=float(lat.mean()),
            p95_latency=quantile(lat, 0.95),
            throughput=self.total_tokens / self.now,
            waves=0,
            mean_wave_batch=0.0,
            policy="continuous",
            p50_latency=quantile(lat, 0.50),
            p99_latency=quantile(lat, 0.99),
            mean_ttft=float(tt.mean()),
            p95_ttft=quantile(tt, 0.95),
            rejected=self.rejected,
            iterations=self.iterations,
            mean_inflight=float(self.inflight_sum) / float(self.iterations),
            drift_triggers=self.drift_triggers,
            migrations=self.migrations,
            replans=self.replans,
            migration_seconds=self.migration_seconds,
        )


def simulate_continuous_vectorized(
    plan: "ExecutionPlan",
    cluster: "Cluster",
    columns: tuple[np.ndarray, np.ndarray, np.ndarray],
    *,
    max_batch: int | None,
    engine: str,
    scm: StageCostModel,
    source: str = "kernels",
    latency_model: "LatencyModel | None" = None,
    drift: "DriftConfig | None" = None,
    replanner: "Replanner | None" = None,
    force_general: bool = False,
    sample_sink: "dict | None" = None,
):
    """Continuous-policy simulation over pre-sorted trace ``columns``.

    Drop-in replacement for the scalar ``_simulate_continuous`` loop —
    same admission control, pricing, drift detection, and migration
    accounting, evaluated as event batches.  Returns a byte-identical
    :class:`~repro.sim.online.OnlineResult`.

    ``force_general`` disables the exact-linear token-budget admission
    shortcut (general per-stage scan only).  ``sample_sink``, when given,
    receives the raw per-request ``latencies``/``ttfts`` arrays so fleet
    aggregation can pool exact samples across replicas.
    """
    return _Engine(
        plan, cluster, columns,
        max_batch=max_batch, engine=engine, scm=scm, source=source,
        latency_model=latency_model, drift=drift, replanner=replanner,
        force_general=force_general, sample_sink=sample_sink,
    ).run()
