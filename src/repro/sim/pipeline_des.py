"""Event-driven pipeline simulation (exact counterpart of the closed forms).

Builds the full serving task graph of a plan — every (stage, micro-batch)
prefill task, every (stage, decode-group, token) decode task, with the
token-feedback dependency from the last stage back to the first — and
executes it with :func:`repro.sim.events.simulate_task_graph`.

The closed-form simulator costs decode with a per-token barrier
(``sum + (m-1) * max``); the event-driven schedule lets micro-batches of
*different* token indices overlap, so its makespan is a lower bound.
The validation tests assert ``DES <= analytic <= DES * small factor``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..cost.stagecosts import StageCostModel
from .events import ScheduleResult, Task, simulate_task_graph

if TYPE_CHECKING:  # type-only: keeps repro.sim importable without repro.core
    from ..core.plan import ExecutionPlan
    from ..cost.latency import LatencyModel
    from ..hardware.cluster import Cluster

__all__ = [
    "DESResult",
    "simulate_pipeline_des",
    "iteration_makespan_des",
    "iteration_makespan_des_batch",
    "FaultModel",
    "FaultyDESResult",
    "simulate_pipeline_des_with_faults",
    "mtbf_sweep",
]


@dataclass(frozen=True)
class DESResult:
    """Event-driven makespan plus the underlying schedule."""

    total_latency: float
    schedule: ScheduleResult
    num_tasks: int


@dataclass(frozen=True)
class FaultModel:
    """MTBF-style failure trace mirroring the runtime's fault handling.

    Stage crashes arrive as a seeded Poisson process with mean
    inter-arrival ``mtbf_seconds`` (aggregated over the whole pipeline).
    Each crash costs ``restart_seconds`` of worker rebuild (cheap,
    because shards are cached quantized — the paper's loading plugin)
    plus the lost work.  ``replay_from_start=True`` models the real
    runtime, which replays the whole batch after a failure because KV
    state is stage-local and unrecoverable; ``False`` is the ideal
    per-step-checkpoint lower bound, useful as the other end of the
    bracket in MTBF sweeps.
    """

    mtbf_seconds: float
    restart_seconds: float = 0.0
    seed: int = 0
    max_failures: int = 1000
    replay_from_start: bool = True

    def __post_init__(self) -> None:
        if self.mtbf_seconds <= 0:
            raise ValueError("mtbf_seconds must be positive")
        if self.restart_seconds < 0:
            raise ValueError("restart_seconds must be non-negative")


@dataclass(frozen=True)
class FaultyDESResult:
    """DES makespan under a failure trace, plus recovery accounting."""

    total_latency: float
    fault_free_latency: float
    num_failures: int
    downtime_seconds: float
    completed: bool

    @property
    def recovery_overhead(self) -> float:
        """Relative latency inflation caused by failures."""
        if self.fault_free_latency <= 0:
            return 0.0
        return self.total_latency / self.fault_free_latency - 1.0


def _link_resource_keys(plan: ExecutionPlan, cluster: Cluster) -> list:
    """Shared-fabric resource key per stage boundary.

    Boundaries inside one node share that node's NVLink/PCIe fabric;
    boundaries between the same node pair share the Ethernet path — so
    two pipeline crossings of the same physical backbone serialize when
    link contention is modelled.
    """
    devices = [s.device for s in plan.stages]
    keys = []
    for j in range(len(devices)):
        a = devices[j]
        b = devices[(j + 1) % len(devices)]
        if a.node_id == b.node_id:
            keys.append(("link", "intra", a.node_id))
        else:
            keys.append(("link", "inter", min(a.node_id, b.node_id),
                         max(a.node_id, b.node_id)))
    return keys


def simulate_pipeline_des(
    plan: ExecutionPlan,
    cluster: Cluster,
    *,
    async_comm: bool = False,
    latency_model: LatencyModel | None = None,
    cost_model: StageCostModel | None = None,
) -> DESResult:
    """Exact event-driven latency of one offline batch under ``plan``.

    With ``async_comm=True`` activation transfers become their own tasks
    on shared-fabric link resources, modelling the paper runtime's
    asynchronous communication: the sender is free to start its next
    micro-batch while the transfer is in flight (overlap — faster), but
    two boundaries crossing the same node pair or the same intra-node
    fabric serialize (contention — slower).  The default folds comm into
    the sender's busy time, matching the closed-form model.

    Stage times come from the same :class:`StageCostModel` the analytic
    simulator uses; ``latency_model`` switches it to the planner's fitted
    cost model, ``cost_model`` shares an existing instance's memos.
    """
    w = plan.workload
    n_stages = plan.num_stages
    m_p = -(-w.global_batch // plan.prefill_microbatch)
    m_d = -(-w.global_batch // plan.decode_microbatch)
    if cost_model is None:
        cost_model = StageCostModel(plan, cluster, latency_model=latency_model)
    pre = cost_model.stage_prefill_times()
    contexts = w.prompt_len + np.arange(
        1, max(w.decode_passes, 1) + 1, dtype=np.float64
    )
    dec = cost_model.stage_decode_times(contexts)

    comm_pre = np.zeros(n_stages)
    comm_dec = np.zeros(n_stages)
    if async_comm:
        comm_pre = cost_model.prefill_comm_times()
        comm_dec = cost_model.decode_comm_times()
        # comm leaves the stage busy-time (it rides the link resource now)
        pre = pre - comm_pre
        dec = dec - comm_dec[:, None]
    link_keys = _link_resource_keys(plan, cluster)

    tasks: list[Task] = []
    # ---- prefill: task P(j, i) on device j, dep on P(j-1, i) ----
    for i in range(m_p):
        for j in range(n_stages):
            if async_comm and j > 0:
                deps = [("Xp", j - 1, i)]
            else:
                deps = [] if j == 0 else [("P", j - 1, i)]
            tasks.append(
                Task(
                    task_id=("P", j, i),
                    duration=float(pre[j]),
                    resource=("dev", j),
                    deps=tuple(deps),
                    priority=(0, i, j),
                )
            )
            if async_comm and j < n_stages - 1:
                tasks.append(
                    Task(
                        task_id=("Xp", j, i),
                        duration=float(comm_pre[j]),
                        resource=link_keys[j],
                        deps=(("P", j, i),),
                        priority=(0, i, j, 1),
                    )
                )
    # ---- decode: D(j, g, k); deps: previous stage same token, and the
    # feedback edge D(last, g, k-1) -> D(0, g, k) (sampling closes the
    # loop through the master).  Token 1 comes from prefill: the decode
    # group g's first step depends on every member prefill finishing.
    group_members = max(1, plan.decode_microbatch // plan.prefill_microbatch)
    for g in range(m_d):
        members = [
            i for i in range(g * group_members, min((g + 1) * group_members, m_p))
        ] or [min(g, m_p - 1)]
        for k in range(w.decode_passes):
            for j in range(n_stages):
                deps: list = []
                if j == 0:
                    if k == 0:
                        deps = [("P", n_stages - 1, i) for i in members]
                    elif async_comm:
                        deps = [("Xd", n_stages - 1, g, k - 1)]
                    else:
                        deps = [("D", n_stages - 1, g, k - 1)]
                elif async_comm:
                    deps = [("Xd", j - 1, g, k)]
                else:
                    deps = [("D", j - 1, g, k)]
                tasks.append(
                    Task(
                        task_id=("D", j, g, k),
                        duration=float(dec[j][k]),
                        resource=("dev", j),
                        deps=tuple(deps),
                        priority=(1, k, g, j),
                    )
                )
                if async_comm:
                    tasks.append(
                        Task(
                            task_id=("Xd", j, g, k),
                            duration=float(comm_dec[j]),
                            resource=link_keys[j],
                            deps=(("D", j, g, k),),
                            priority=(1, k, g, j, 1),
                        )
                    )
    schedule = simulate_task_graph(tasks)
    return DESResult(
        total_latency=schedule.makespan,
        schedule=schedule,
        num_tasks=len(tasks),
    )


def iteration_makespan_des(unit_stage_times: "list[np.ndarray]") -> float:
    """Event-driven makespan of one continuous-batching iteration.

    Each unit (the fused decode group, plus one prefill unit per newly
    admitted request) flows through the stages in order; units overlap
    across stages exactly as micro-batches do in the offline pipeline.
    ``unit_stage_times[u][j]`` is unit ``u``'s busy time on stage ``j``
    (comm folded into the sender).  The closed-form counterpart is
    ``sum_j t_0j + sum_{u>0} max_j t_uj``; the DES schedule is its exact
    lower bound, which the online simulator's ``engine="des"`` uses.
    """
    tasks: list[Task] = []
    for u, stage_times in enumerate(unit_stage_times):
        for j, d in enumerate(stage_times):
            tasks.append(
                Task(
                    task_id=("U", u, j),
                    duration=float(d),
                    resource=("dev", j),
                    deps=(("U", u, j - 1),) if j else (),
                    priority=(u, j),
                )
            )
    return simulate_task_graph(tasks).makespan


def iteration_makespan_des_batch(stage_times: np.ndarray) -> np.ndarray:
    """Vectorized DES makespans of single-unit (decode-only) iterations.

    Row ``i`` of ``stage_times`` holds one iteration's per-stage busy
    times.  With a single unit the event-driven schedule degenerates to
    the sequential chain through the stages, so the makespan is the
    left-fold sum ``((0 + t_0) + t_1) + ...`` — evaluated here as
    column-wise adds, bit-identical to ``iteration_makespan_des([row])``
    per row.  The vectorized online engine prices whole decode runs
    through this instead of building one task graph per token step.
    """
    st = np.asarray(stage_times, dtype=np.float64)
    if st.ndim != 2:
        raise ValueError("stage_times must be a (iterations, stages) matrix")
    acc = np.zeros(st.shape[0])
    for j in range(st.shape[1]):
        acc = acc + st[:, j]
    return acc


def simulate_pipeline_des_with_faults(
    plan: ExecutionPlan,
    cluster: Cluster,
    faults: FaultModel,
    *,
    async_comm: bool = False,
    cost_model: StageCostModel | None = None,
) -> FaultyDESResult:
    """Batch latency under ``plan`` when stages crash per ``faults``.

    The fault-free DES makespan is the batch's work requirement; the
    failure trace then overlays the runtime's recovery semantics: a
    crash wastes the uptime accumulated since the last consistent point
    (batch start when ``replay_from_start``, the crash instant
    otherwise) and adds ``restart_seconds`` of rebuild before serving
    resumes.  Deterministic for a given seed, so planner evaluations
    under failure traces (MTBF sweeps) are reproducible.
    """
    base = simulate_pipeline_des(
        plan, cluster, async_comm=async_comm, cost_model=cost_model
    )
    work = base.total_latency
    rng = np.random.default_rng(faults.seed)

    wall = 0.0
    progress = 0.0
    failures = 0
    completed = False
    while failures <= faults.max_failures:
        gap = float(rng.exponential(faults.mtbf_seconds))
        remaining = work - progress
        if gap >= remaining:
            wall += remaining
            completed = True
            break
        wall += gap + faults.restart_seconds
        failures += 1
        if faults.replay_from_start:
            progress = 0.0  # KV state is stage-local: the batch replays
        else:
            progress += gap  # ideal checkpoint: only the restart is lost
    total = wall if completed else float("inf")
    return FaultyDESResult(
        total_latency=total,
        fault_free_latency=work,
        num_failures=failures,
        downtime_seconds=(total - work) if completed else float("inf"),
        completed=completed,
    )


def mtbf_sweep(
    plan: ExecutionPlan,
    cluster: Cluster,
    mtbf_values: "list[float] | tuple[float, ...]",
    *,
    restart_seconds: float = 0.0,
    seed: int = 0,
    replay_from_start: bool = True,
    async_comm: bool = False,
) -> list[FaultyDESResult]:
    """Evaluate a plan across an MTBF grid (one seeded trace per point)."""
    return [
        simulate_pipeline_des_with_faults(
            plan, cluster,
            FaultModel(
                mtbf_seconds=m, restart_seconds=restart_seconds,
                seed=seed, replay_from_start=replay_from_start,
            ),
            async_comm=async_comm,
        )
        for m in mtbf_values
    ]
