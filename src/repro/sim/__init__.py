"""Simulation substrate: kernels, pipeline, offloading, quality."""

from .kernels import (
    KERNELS_PER_LAYER,
    embedding_exec_time,
    layer_exec_time,
    layer_exec_times_decode_sweep,
    layer_memory_traffic,
)
from .comm import activation_bytes, boundary_links, stage_comm_time
from .pipeline import PipelineResult, StageReport, simulate_pipeline
from .events import ScheduleResult, Task, simulate_task_graph
from .pipeline_des import (
    DESResult,
    FaultModel,
    FaultyDESResult,
    mtbf_sweep,
    simulate_pipeline_des,
    simulate_pipeline_des_with_faults,
)
from .online import (
    OnlineRequest,
    OnlineResult,
    max_admissible_batch,
    simulate_online,
)
from .offload import OffloadResult, simulate_offload
from .quality import (
    QUALITY_ANCHORS,
    QualityAnchors,
    QualityModel,
    measure_kl_tiny,
    measure_ppl_tiny,
    plan_accuracy,
    plan_perplexity,
)

__all__ = [
    "layer_exec_time",
    "layer_exec_times_decode_sweep",
    "embedding_exec_time",
    "layer_memory_traffic",
    "KERNELS_PER_LAYER",
    "activation_bytes",
    "stage_comm_time",
    "boundary_links",
    "PipelineResult",
    "StageReport",
    "simulate_pipeline",
    "Task",
    "ScheduleResult",
    "simulate_task_graph",
    "DESResult",
    "simulate_pipeline_des",
    "FaultModel",
    "FaultyDESResult",
    "simulate_pipeline_des_with_faults",
    "mtbf_sweep",
    "OnlineRequest",
    "OnlineResult",
    "max_admissible_batch",
    "simulate_online",
    "OffloadResult",
    "simulate_offload",
    "QualityAnchors",
    "QUALITY_ANCHORS",
    "QualityModel",
    "plan_perplexity",
    "plan_accuracy",
    "measure_ppl_tiny",
    "measure_kl_tiny",
]
