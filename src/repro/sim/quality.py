"""Model-quality surrogate: perplexity / accuracy of a quantization plan.

The paper measures perplexity of real checkpoints on WikiText2/PTB/C4.
Offline we substitute a *calibrated, layer-additive* surrogate:

``PPL(plan) = PPL_fp16 + sum_i delta(i, b_i)``

where the per-layer degradation ``delta(i, b) = anchor(b) * w_i(b)``
splits the measured uniform-quantization degradation ``anchor(b) =
PPL_uniform(b) - PPL_fp16`` across layers proportionally to the Prop.-2
variance indicator (so more sensitive layers carry more of the hit —
the Table-1 structure).  Anchor PPLs are the paper's own reported
numbers, so uniform plans land on published values by construction and
mixed plans interpolate through the indicator.

Zero-shot accuracy uses the same machinery with accuracy anchors from
Fig. 4 (degradation enters with a negative sign).

For the tiny NumPy models everything is *measured for real*:
:func:`measure_ppl_tiny` quantizes actual weights and evaluates true
perplexity on a synthetic corpus — the benchmarks use it to validate the
surrogate's ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from ..models.registry import get_model
from ..models.corpus import make_corpus
from ..models.transformer import TinyDecoderLM
from ..quant.indicator import IndicatorTable, synthetic_indicator
from ..quant.quantizer import quantize_dequantize

__all__ = [
    "QualityAnchors",
    "QUALITY_ANCHORS",
    "QualityModel",
    "plan_perplexity",
    "plan_accuracy",
    "measure_ppl_tiny",
    "measure_kl_tiny",
]


@dataclass(frozen=True)
class QualityAnchors:
    """Published quality numbers for one model (PPL averaged over the
    paper's three datasets; accuracy over its three QA benchmarks)."""

    ppl_fp16: float
    ppl_by_bits: dict[int, float]
    acc_fp16: float | None = None
    acc_by_bits: dict[int, float] | None = None

    def ppl_delta(self, bits: int) -> float:
        if bits >= 16:
            return 0.0
        if bits in self.ppl_by_bits:
            return self.ppl_by_bits[bits] - self.ppl_fp16
        # extrapolate through the quantization-noise scaling (S ~ 1/qmax)
        known = sorted(self.ppl_by_bits)
        ref = known[0]
        ref_delta = self.ppl_by_bits[ref] - self.ppl_fp16
        scale = ((2 ** (ref - 1) - 1) / (2 ** (bits - 1) - 1)) ** 2
        return ref_delta * scale

    def acc_delta(self, bits: int) -> float:
        if self.acc_by_bits is None or self.acc_fp16 is None or bits >= 16:
            return 0.0
        if bits in self.acc_by_bits:
            return self.acc_fp16 - self.acc_by_bits[bits]
        known = sorted(self.acc_by_bits)
        ref = known[0]
        ref_delta = self.acc_fp16 - self.acc_by_bits[ref]
        scale = ((2 ** (ref - 1) - 1) / (2 ** (bits - 1) - 1)) ** 2
        return ref_delta * scale


#: Anchors distilled from the paper's Tables 1/4/5/6/7 and Fig. 4.
QUALITY_ANCHORS: dict[str, QualityAnchors] = {
    "opt-13b": QualityAnchors(
        ppl_fp16=11.22, ppl_by_bits={8: 11.23, 4: 11.78, 3: 12.90},
    ),
    "opt-30b": QualityAnchors(
        ppl_fp16=10.70, ppl_by_bits={8: 10.70, 4: 10.78, 3: 11.10},
    ),
    "opt-66b": QualityAnchors(
        ppl_fp16=10.33, ppl_by_bits={8: 10.34, 4: 10.50, 3: 10.90},
    ),
    "opt-175b": QualityAnchors(
        ppl_fp16=10.12, ppl_by_bits={8: 10.13, 4: 10.26, 3: 10.60},
    ),
    "bloom-176b": QualityAnchors(
        ppl_fp16=10.90, ppl_by_bits={8: 10.91, 4: 10.97, 3: 11.25},
    ),
    "opt-1.3b": QualityAnchors(
        ppl_fp16=15.40, ppl_by_bits={8: 15.44, 4: 16.45, 3: 19.20},
        acc_fp16=63.5, acc_by_bits={8: 63.4, 4: 61.0, 3: 55.0},
    ),
    "bloom-3b": QualityAnchors(
        ppl_fp16=17.50, ppl_by_bits={8: 17.53, 4: 18.35, 3: 20.50},
        acc_fp16=61.2, acc_by_bits={8: 61.1, 4: 59.5, 3: 55.5},
    ),
}


class QualityModel:
    """Indicator-weighted quality interpolation for one model."""

    def __init__(
        self,
        model_name: str,
        *,
        indicator: IndicatorTable | None = None,
        anchors: QualityAnchors | None = None,
    ) -> None:
        self.cfg = get_model(model_name)
        self.anchors = anchors or QUALITY_ANCHORS.get(model_name)
        if self.anchors is None:
            raise KeyError(
                f"no quality anchors for {model_name!r}; pass anchors= explicitly"
            )
        ind = indicator or synthetic_indicator(self.cfg)
        if ind.num_layers != self.cfg.num_layers:
            raise ValueError("indicator rows must match model layers")
        self.indicator = ind

    def _weights(self, bits: int) -> np.ndarray:
        col = self.indicator.column(bits)
        total = col.sum()
        if total <= 0:
            return np.full(self.cfg.num_layers, 1.0 / self.cfg.num_layers)
        return col / total

    def perplexity(self, layer_bits: Sequence[int]) -> float:
        """Surrogate PPL of a per-layer bit assignment."""
        if len(layer_bits) != self.cfg.num_layers:
            raise ValueError("need one bitwidth per layer")
        ppl = self.anchors.ppl_fp16
        for i, b in enumerate(layer_bits):
            if b >= 16:
                continue
            # uniform-b plans sum the weights to 1, landing exactly on the
            # published uniform anchor; mixed plans interpolate
            ppl += self.anchors.ppl_delta(b) * self._weights(b)[i]
        return float(ppl)

    def accuracy(self, layer_bits: Sequence[int]) -> float | None:
        """Surrogate accuracy, or None without anchors."""
        if self.anchors.acc_fp16 is None:
            return None
        acc = self.anchors.acc_fp16
        for i, b in enumerate(layer_bits):
            if b >= 16:
                continue
            acc -= self.anchors.acc_delta(b) * self._weights(b)[i]
        return float(acc)


@lru_cache(maxsize=32)
def _quality_model(model_name: str) -> QualityModel:
    return QualityModel(model_name)


def plan_perplexity(model_name: str, layer_bits: Sequence[int]) -> float:
    """Surrogate PPL for a per-layer bit assignment (cached model)."""
    return _quality_model(model_name).perplexity(tuple(layer_bits))


def plan_accuracy(model_name: str, layer_bits: Sequence[int]) -> float | None:
    """Surrogate zero-shot accuracy (None without accuracy anchors)."""
    return _quality_model(model_name).accuracy(tuple(layer_bits))


# ----------------------------------------------------------------------
# Real measurements on the tiny NumPy model
# ----------------------------------------------------------------------
def measure_ppl_tiny(
    model_name: str,
    layer_bits: Sequence[int],
    *,
    seed: int = 0,
    eval_seqs: int = 8,
    eval_len: int = 48,
) -> float:
    """True perplexity of a genuinely quantized tiny model.

    Quantizes each layer's dense weights to its assigned bitwidth
    (round-to-nearest, per-channel) and evaluates on a deterministic
    synthetic corpus.
    """
    cfg = get_model(model_name)
    if len(layer_bits) != cfg.num_layers:
        raise ValueError("need one bitwidth per layer")
    model = TinyDecoderLM(cfg, seed=seed)
    for i, b in enumerate(layer_bits):
        if b >= 16:
            continue
        model.apply_to_layer(i, lambda _n, w, b=b: quantize_dequantize(w, b))
    corpus = make_corpus(
        cfg.vocab_size, num_seqs=eval_seqs, seq_len=eval_len, seed=seed + 99
    )
    return model.perplexity(corpus.tokens)


def measure_kl_tiny(
    model_name: str,
    layer_bits: Sequence[int],
    *,
    seed: int = 0,
    eval_seqs: int = 8,
    eval_len: int = 48,
    rounding: str = "deterministic",
) -> float:
    """Mean KL(FP16 || quantized) over next-token distributions.

    Unlike corpus perplexity — which is insensitive on an untrained
    model — the KL to the full-precision model's own predictive
    distribution measures the *output perturbation* quantization causes,
    the exact quantity Theorem 1 bounds.  Strictly monotone in
    quantization severity, so it validates the surrogate's ordering.
    """
    cfg = get_model(model_name)
    if len(layer_bits) != cfg.num_layers:
        raise ValueError("need one bitwidth per layer")
    ref = TinyDecoderLM(cfg, seed=seed)
    quant = ref.clone()
    rng = np.random.default_rng(seed + 7)
    for i, b in enumerate(layer_bits):
        if b >= 16:
            continue
        quant.apply_to_layer(
            i,
            lambda _n, w, b=b: quantize_dequantize(w, b, rounding=rounding, rng=rng),
        )
    corpus = make_corpus(
        cfg.vocab_size, num_seqs=eval_seqs, seq_len=eval_len, seed=seed + 99
    )
    logits_ref = ref.forward_full(corpus.tokens)
    logits_q = quant.forward_full(corpus.tokens)

    def log_softmax(x: np.ndarray) -> np.ndarray:
        m = x.max(axis=-1, keepdims=True)
        z = x - m
        return z - np.log(np.exp(z).sum(axis=-1, keepdims=True))

    lp_ref = log_softmax(logits_ref)
    lp_q = log_softmax(logits_q)
    kl = (np.exp(lp_ref) * (lp_ref - lp_q)).sum(axis=-1)
    return float(kl.mean())
