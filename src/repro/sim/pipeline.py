"""Pipeline-parallel generative-serving simulator.

This is the reproduction's stand-in for the paper's multi-GPU testbed:
given an :class:`~repro.core.plan.ExecutionPlan` it computes the
end-to-end batch latency, per-phase breakdown, per-stage memory (with OOM
detection) and token throughput.

Timing model
------------
*Prefill* runs ``m_p = ceil(b / mb_p)`` micro-batches through the stages
GPipe-style::

    T_pre = sum_j u_j + (m_p - 1) * max_j u_j

where ``u_j`` is stage ``j``'s per-micro-batch busy time (its layers at
their bitwidths + embedding work at the head, logit projection at the
tail, + the outbound activation transfer).

*Decode* generates tokens one position at a time; micro-batch ``i``'s
step ``k+1`` depends on its own step ``k`` (through sampling), while
different micro-batches overlap within a step.  Per-token cycle (the
paper's "all pipeline stages plus (mu - 1) x slowest stage" form)::

    T_k = sum_j u_jk + (m_d - 1) * max_j u_jk

Stage times grow with the context (KV reads), so every one of the
``n - 1`` decode passes is costed at its true context length (vectorized
over ``k``).

Setting ``latency_model`` swaps ground-truth kernel times for cost-model
predictions — that is the planner's view of the world, and comparing the
two is exactly the paper's Fig. 7 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..cost.memory import StageMemory
from ..cost.stagecosts import StageCostModel

if TYPE_CHECKING:  # type-only: keeps repro.sim importable without repro.core
    from ..core.plan import ExecutionPlan
    from ..cost.latency import LatencyModel
    from ..hardware.cluster import Cluster

__all__ = ["StageReport", "PipelineResult", "simulate_pipeline"]


@dataclass(frozen=True)
class StageReport:
    """Per-stage accounting from one simulation."""

    gpu_type: str
    num_layers: int
    prefill_time: float  #: per-micro-batch busy time, seconds
    decode_time_first: float  #: at context = s
    decode_time_last: float  #: at context = s + n - 1
    memory: StageMemory
    capacity_bytes: float

    @property
    def fits(self) -> bool:
        """Whether this stage's peak memory fits its device."""
        return self.memory.fits(self.capacity_bytes)


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of simulating one plan on one cluster."""

    plan: ExecutionPlan
    prefill_latency: float
    decode_latency: float
    stage_reports: tuple[StageReport, ...]
    oom_stages: tuple[int, ...]

    @property
    def feasible(self) -> bool:
        """No stage ran out of memory."""
        return not self.oom_stages

    @property
    def total_latency(self) -> float:
        """Prefill + decode batch latency (inf when infeasible)."""
        if not self.feasible:
            return float("inf")
        return self.prefill_latency + self.decode_latency

    @property
    def throughput(self) -> float:
        """Generated tokens per second for the whole batch."""
        t = self.total_latency
        if not np.isfinite(t) or t <= 0:
            return 0.0
        return self.plan.workload.total_generated_tokens / t

    @property
    def bottleneck_stage(self) -> int:
        """Index of the slowest prefill stage."""
        times = [r.prefill_time for r in self.stage_reports]
        return int(np.argmax(times))

    def summary(self) -> str:
        """One-line human-readable result."""
        w = self.plan.workload
        if not self.feasible:
            return f"INFEASIBLE (OOM on stages {list(self.oom_stages)})"
        return (
            f"latency {self.total_latency:.2f}s "
            f"(prefill {self.prefill_latency:.2f} + decode {self.decode_latency:.2f}) | "
            f"throughput {self.throughput:.2f} tok/s | "
            f"b={w.global_batch} s={w.prompt_len} n={w.gen_len}"
        )


def simulate_pipeline(
    plan: ExecutionPlan,
    cluster: Cluster,
    *,
    latency_model: LatencyModel | None = None,
    check_memory: bool = True,
    cost_model: StageCostModel | None = None,
) -> PipelineResult:
    """Simulate ``plan`` end to end on ``cluster``.

    All per-stage times and memory views come from one
    :class:`StageCostModel`; pass ``cost_model`` to share its memos with
    other consumers (it must have been built for this plan and cluster),
    or ``latency_model`` to price with the planner's fitted cost model
    instead of the ground-truth kernels.
    """
    if cost_model is None:
        cost_model = StageCostModel(plan, cluster, latency_model=latency_model)
    w = plan.workload
    n_stages = plan.num_stages

    # ---------------- memory / OOM ----------------
    reports: list[StageReport] = []
    oom: list[int] = []
    for j, (stage, mem) in enumerate(
        zip(plan.stages, cost_model.stage_memory_views())
    ):
        cap = stage.device.spec.memory_bytes
        if check_memory and not mem.fits(cap):
            oom.append(j)
        reports.append(
            StageReport(
                gpu_type=stage.device.type_name,
                num_layers=stage.num_layers,
                prefill_time=0.0,
                decode_time_first=0.0,
                decode_time_last=0.0,
                memory=mem,
                capacity_bytes=cap,
            )
        )

    # ---------------- prefill ----------------
    m_p = -(-w.global_batch // plan.prefill_microbatch)  # ceil div
    pre_busy = cost_model.stage_prefill_times()
    prefill_latency = float(pre_busy.sum() + (m_p - 1) * pre_busy.max())

    # ---------------- decode ----------------
    decode_latency = 0.0
    dec_first = np.zeros(n_stages)
    dec_last = np.zeros(n_stages)
    if w.decode_passes > 0:
        m_d = -(-w.global_batch // plan.decode_microbatch)
        contexts = w.prompt_len + np.arange(1, w.decode_passes + 1, dtype=np.float64)
        per_stage = cost_model.stage_decode_times(contexts)
        cycle = per_stage.sum(axis=0) + (m_d - 1) * per_stage.max(axis=0)
        decode_latency = float(cycle.sum())
        dec_first = per_stage[:, 0]
        dec_last = per_stage[:, -1]

    reports = [
        StageReport(
            gpu_type=r.gpu_type,
            num_layers=r.num_layers,
            prefill_time=float(pre_busy[j]),
            decode_time_first=float(dec_first[j]),
            decode_time_last=float(dec_last[j]),
            memory=r.memory,
            capacity_bytes=r.capacity_bytes,
        )
        for j, r in enumerate(reports)
    ]
    return PipelineResult(
        plan=plan,
        prefill_latency=prefill_latency,
        decode_latency=decode_latency,
        stage_reports=tuple(reports),
        oom_stages=tuple(oom),
    )
