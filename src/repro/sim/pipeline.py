"""Pipeline-parallel generative-serving simulator.

This is the reproduction's stand-in for the paper's multi-GPU testbed:
given an :class:`~repro.core.plan.ExecutionPlan` it computes the
end-to-end batch latency, per-phase breakdown, per-stage memory (with OOM
detection) and token throughput.

Timing model
------------
*Prefill* runs ``m_p = ceil(b / mb_p)`` micro-batches through the stages
GPipe-style::

    T_pre = sum_j u_j + (m_p - 1) * max_j u_j

where ``u_j`` is stage ``j``'s per-micro-batch busy time (its layers at
their bitwidths + embedding work at the head, logit projection at the
tail, + the outbound activation transfer).

*Decode* generates tokens one position at a time; micro-batch ``i``'s
step ``k+1`` depends on its own step ``k`` (through sampling), while
different micro-batches overlap within a step.  Per-token cycle (the
paper's "all pipeline stages plus (mu - 1) x slowest stage" form)::

    T_k = sum_j u_jk + (m_d - 1) * max_j u_jk

Stage times grow with the context (KV reads), so every one of the
``n - 1`` decode passes is costed at its true context length (vectorized
over ``k``).

Setting ``latency_model`` swaps ground-truth kernel times for cost-model
predictions — that is the planner's view of the world, and comparing the
two is exactly the paper's Fig. 7 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cost.latency import LatencyModel
from ..cost.memory import StageMemory, stage_memory
from ..hardware.cluster import Cluster
from ..models.registry import get_model
from ..core.plan import ExecutionPlan
from .comm import boundary_links, stage_comm_time
from .kernels import (
    embedding_exec_time,
    layer_exec_time,
    layer_exec_times_decode_sweep,
)

__all__ = ["StageReport", "PipelineResult", "simulate_pipeline"]


@dataclass(frozen=True)
class StageReport:
    """Per-stage accounting from one simulation."""

    gpu_type: str
    num_layers: int
    prefill_time: float  #: per-micro-batch busy time, seconds
    decode_time_first: float  #: at context = s
    decode_time_last: float  #: at context = s + n - 1
    memory: StageMemory
    capacity_bytes: float

    @property
    def fits(self) -> bool:
        """Whether this stage's peak memory fits its device."""
        return self.memory.fits(self.capacity_bytes)


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of simulating one plan on one cluster."""

    plan: ExecutionPlan
    prefill_latency: float
    decode_latency: float
    stage_reports: tuple[StageReport, ...]
    oom_stages: tuple[int, ...]

    @property
    def feasible(self) -> bool:
        """No stage ran out of memory."""
        return not self.oom_stages

    @property
    def total_latency(self) -> float:
        """Prefill + decode batch latency (inf when infeasible)."""
        if not self.feasible:
            return float("inf")
        return self.prefill_latency + self.decode_latency

    @property
    def throughput(self) -> float:
        """Generated tokens per second for the whole batch."""
        t = self.total_latency
        if not np.isfinite(t) or t <= 0:
            return 0.0
        return self.plan.workload.total_generated_tokens / t

    @property
    def bottleneck_stage(self) -> int:
        """Index of the slowest prefill stage."""
        times = [r.prefill_time for r in self.stage_reports]
        return int(np.argmax(times))

    def summary(self) -> str:
        """One-line human-readable result."""
        w = self.plan.workload
        if not self.feasible:
            return f"INFEASIBLE (OOM on stages {list(self.oom_stages)})"
        return (
            f"latency {self.total_latency:.2f}s "
            f"(prefill {self.prefill_latency:.2f} + decode {self.decode_latency:.2f}) | "
            f"throughput {self.throughput:.2f} tok/s | "
            f"b={w.global_batch} s={w.prompt_len} n={w.gen_len}"
        )


def _stage_prefill_time(
    plan: ExecutionPlan,
    stage_idx: int,
    latency_model: LatencyModel | None,
) -> float:
    cfg = get_model(plan.model_name)
    w = plan.workload
    stage = plan.stages[stage_idx]
    gpu = stage.device.spec
    mb, s = plan.prefill_microbatch, w.prompt_len

    if latency_model is not None:
        t = latency_model.predict_layers(gpu, stage.layer_bits, "prefill", mb, s, s)
    else:
        t = sum(
            layer_exec_time(gpu, cfg, b, mb, s, s) for b in stage.layer_bits
        )
    if stage_idx == 0:
        t += embedding_exec_time(gpu, cfg, mb, s, with_logits=False)
    if stage_idx == plan.num_stages - 1:
        # only the last position's logits are needed out of prefill
        t += embedding_exec_time(gpu, cfg, mb, 1, with_logits=True)
    return t


def _stage_decode_times(
    plan: ExecutionPlan,
    stage_idx: int,
    contexts: np.ndarray,
    latency_model: LatencyModel | None,
) -> np.ndarray:
    cfg = get_model(plan.model_name)
    stage = plan.stages[stage_idx]
    gpu = stage.device.spec
    mb = plan.decode_microbatch

    total = np.zeros_like(contexts, dtype=np.float64)
    for bits, count in stage.bit_counts.items():
        if latency_model is not None:
            times = latency_model.decode_step_times(gpu, bits, mb, contexts)
        else:
            times = layer_exec_times_decode_sweep(gpu, cfg, bits, mb, contexts)
        total += count * times
    extra = 0.0
    if stage_idx == 0:
        extra += embedding_exec_time(gpu, cfg, mb, 1, with_logits=False)
    if stage_idx == plan.num_stages - 1:
        extra += embedding_exec_time(gpu, cfg, mb, 1, with_logits=True)
    return total + extra


def simulate_pipeline(
    plan: ExecutionPlan,
    cluster: Cluster,
    *,
    latency_model: LatencyModel | None = None,
    check_memory: bool = True,
) -> PipelineResult:
    """Simulate ``plan`` end to end on ``cluster``."""
    cfg = get_model(plan.model_name)
    w = plan.workload
    devices = [s.device for s in plan.stages]
    links = boundary_links(cluster, devices)
    n_stages = plan.num_stages

    # ---------------- memory / OOM ----------------
    kv_bits = int(plan.meta.get("kv_bits", 16))
    reports: list[StageReport] = []
    oom: list[int] = []
    for j, stage in enumerate(plan.stages):
        mem = stage_memory(
            cfg,
            stage.layer_bits,
            global_batch=w.global_batch,
            prompt_len=w.prompt_len,
            gen_len=w.gen_len,
            prefill_microbatch=plan.prefill_microbatch,
            decode_microbatch=plan.decode_microbatch,
            is_first=(j == 0),
            is_last=(j == n_stages - 1),
            kv_bits=kv_bits,
        )
        cap = stage.device.spec.memory_bytes
        if check_memory and not mem.fits(cap):
            oom.append(j)
        reports.append(
            StageReport(
                gpu_type=stage.device.type_name,
                num_layers=stage.num_layers,
                prefill_time=0.0,
                decode_time_first=0.0,
                decode_time_last=0.0,
                memory=mem,
                capacity_bytes=cap,
            )
        )

    # ---------------- prefill ----------------
    m_p = -(-w.global_batch // plan.prefill_microbatch)  # ceil div
    pre_busy = np.empty(n_stages)
    for j in range(n_stages):
        t = _stage_prefill_time(plan, j, latency_model)
        if j < n_stages - 1:
            t += stage_comm_time(links[j], cfg, plan.prefill_microbatch, w.prompt_len)
        pre_busy[j] = t
    prefill_latency = float(pre_busy.sum() + (m_p - 1) * pre_busy.max())

    # ---------------- decode ----------------
    decode_latency = 0.0
    dec_first = np.zeros(n_stages)
    dec_last = np.zeros(n_stages)
    if w.decode_passes > 0:
        m_d = -(-w.global_batch // plan.decode_microbatch)
        contexts = w.prompt_len + np.arange(1, w.decode_passes + 1, dtype=np.float64)
        per_stage = np.empty((n_stages, contexts.size))
        for j in range(n_stages):
            t = _stage_decode_times(plan, j, contexts, latency_model)
            # decode activations are (mb, 1, h); the tail->head token
            # feedback rides the last link
            t = t + stage_comm_time(links[j], cfg, plan.decode_microbatch, 1)
            per_stage[j] = t
        cycle = per_stage.sum(axis=0) + (m_d - 1) * per_stage.max(axis=0)
        decode_latency = float(cycle.sum())
        dec_first = per_stage[:, 0]
        dec_last = per_stage[:, -1]

    reports = [
        StageReport(
            gpu_type=r.gpu_type,
            num_layers=r.num_layers,
            prefill_time=float(pre_busy[j]),
            decode_time_first=float(dec_first[j]),
            decode_time_last=float(dec_last[j]),
            memory=r.memory,
            capacity_bytes=r.capacity_bytes,
        )
        for j, r in enumerate(reports)
    ]
    return PipelineResult(
        plan=plan,
        prefill_latency=prefill_latency,
        decode_latency=decode_latency,
        stage_reports=tuple(reports),
        oom_stages=tuple(oom),
    )
