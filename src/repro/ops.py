"""Operator-level arithmetic shared by the simulator and the cost models.

Kept free of package-level imports (only :mod:`repro.models.config`) so
both ``repro.sim`` and ``repro.cost`` can use it without import cycles.
"""

from __future__ import annotations

from .models.config import ModelConfig

__all__ = ["layer_memory_traffic", "ACT_BYTES"]

#: Bytes per element of activations (FP16 everywhere, as in the paper).
ACT_BYTES = 2.0


def layer_memory_traffic(
    cfg: ModelConfig,
    bits: int,
    batch: int,
    q: int,
    context: int,
    *,
    kv_bits: int = 16,
) -> float:
    """Bytes moved through DRAM by one decoder layer invocation.

    Counts quantized weight streaming, activation reads/writes and KV
    traffic (write ``q`` new entries, read ``context`` old ones).
    """
    h = cfg.hidden_size
    w_bytes = cfg.layer_weight_bytes(bits)
    # activations: x in/out of ~6 ops plus the MLP intermediate
    act = batch * q * (6 * h + 2 * cfg.ffn_dim) * ACT_BYTES
    # attention score matrix read+write (heads folded into h-sized rows)
    scores = batch * cfg.num_heads * q * context * ACT_BYTES * 2
    # KV stream priced through the one shared per-token formula so every
    # cost consumer agrees byte-for-byte on a bitwidth change
    kv_token = cfg.kv_bytes_per_token_per_layer(kv_bits)
    kv_write = batch * q * kv_token
    kv_read = batch * context * kv_token
    return w_bytes + act + scores + kv_write + kv_read
