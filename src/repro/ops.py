"""Operator-level arithmetic shared by the simulator and the cost models.

Kept free of package-level imports (only :mod:`repro.models.config`) so
both ``repro.sim`` and ``repro.cost`` can use it without import cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # annotation-only: keeps repro.ops import-cycle-free
    from .models.config import ModelConfig

__all__ = ["layer_memory_traffic", "greedy_pick", "argmax_margin", "ACT_BYTES"]

#: Bytes per element of activations (FP16 everywhere, as in the paper).
ACT_BYTES = 2.0


def layer_memory_traffic(
    cfg: ModelConfig,
    bits: int,
    batch: int,
    q: int,
    context: int,
    *,
    kv_bits: int = 16,
) -> float:
    """Bytes moved through DRAM by one decoder layer invocation.

    Counts quantized weight streaming, activation reads/writes and KV
    traffic (write ``q`` new entries, read ``context`` old ones).
    """
    h = cfg.hidden_size
    w_bytes = cfg.layer_weight_bytes(bits)
    # activations: x in/out of ~6 ops plus the MLP intermediate
    act = batch * q * (6 * h + 2 * cfg.ffn_dim) * ACT_BYTES
    # attention score matrix read+write (heads folded into h-sized rows)
    scores = batch * cfg.num_heads * q * context * ACT_BYTES * 2
    # KV stream priced through the one shared per-token formula so every
    # cost consumer agrees byte-for-byte on a bitwidth change
    kv_token = cfg.kv_bytes_per_token_per_layer(kv_bits)
    kv_write = batch * q * kv_token
    kv_read = batch * context * kv_token
    return w_bytes + act + scores + kv_write + kv_read


def greedy_pick(logits: np.ndarray) -> np.ndarray:
    """Deterministic greedy token choice shared by every sampler.

    The tie-break rule is *lowest index wins* (``np.argmax`` semantics).
    The reference generation loop, the pipeline runtime's offline and
    continuous samplers, and the fused batched decode path all route
    through this one function so exact logit ties resolve identically
    everywhere — token-stream equality between execution modes must not
    depend on which sampler saw the tie.
    """
    return np.asarray(logits).argmax(axis=-1)


def argmax_margin(logits: np.ndarray) -> np.ndarray:
    """Top-1 minus top-2 logit gap per row, ``(batch,)`` float64.

    Diagnostic for fused-vs-per-request divergence: batched GEMMs are
    not bitwise row-stable against batch-1 GEMVs (~1e-14 relative
    drift), so greedy streams can only differ where this margin is at
    ULP scale.  Equality tests report the margin at the first diverging
    step to separate "real bug" from "argmax flipped on a near-tie".
    """
    x = np.asarray(logits, dtype=np.float64)
    if x.ndim == 1:
        x = x[None, :]
    if x.shape[-1] < 2:
        return np.zeros(x.shape[0], dtype=np.float64)
    top2 = np.partition(x, -2, axis=-1)[..., -2:]
    return top2[..., 1] - top2[..., 0]
