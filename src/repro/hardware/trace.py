"""Synthetic production-cluster fleet trace (Fig. 1 substrate).

The paper motivates heterogeneous serving with a month of utilization data
from a production AI cluster: high-calibre GPUs (A100/V100) are the
minority yet run hot, while the plentiful inference cards (T4, P100) sit
under-utilized.  We reproduce that figure from a synthetic-but-shaped
fleet trace: a fleet inventory with realistic type proportions and a
per-type utilization time series whose means match the qualitative story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

__all__ = ["FleetTrace", "generate_fleet_trace", "DEFAULT_PORTIONS", "DEFAULT_MEAN_UTIL"]

#: Fraction of the fleet per GPU type — skewed towards inference cards.
DEFAULT_PORTIONS: Mapping[str, float] = {
    "T4-16G": 0.52,
    "P100-12G": 0.18,
    "V100-32G": 0.17,
    "A100-40G": 0.10,
    "A800-80G": 0.03,
}

#: Month-average utilization per type: A100s saturated, T4/P100 idle-ish.
DEFAULT_MEAN_UTIL: Mapping[str, float] = {
    "T4-16G": 0.32,
    "P100-12G": 0.21,
    "V100-32G": 0.58,
    "A100-40G": 0.92,
    "A800-80G": 0.88,
}


@dataclass(frozen=True)
class FleetTrace:
    """One month of per-GPU-type utilization samples.

    Attributes
    ----------
    gpu_types:
        Type names, aligned with the rows of :attr:`utilization`.
    portions:
        Fraction of the fleet per type (sums to 1).
    utilization:
        Array of shape ``(num_types, num_samples)`` with values in [0, 1];
        one sample per hour by default.
    """

    gpu_types: tuple[str, ...]
    portions: np.ndarray
    utilization: np.ndarray

    def mean_utilization(self) -> dict[str, float]:
        """Month-average utilization per GPU type."""
        return {
            t: float(self.utilization[i].mean()) for i, t in enumerate(self.gpu_types)
        }

    def idle_capacity_fraction(self) -> dict[str, float]:
        """Share of the whole fleet's device-hours left idle, per type."""
        means = self.utilization.mean(axis=1)
        idle = self.portions * (1.0 - means)
        return {t: float(idle[i]) for i, t in enumerate(self.gpu_types)}


def generate_fleet_trace(
    *,
    portions: Mapping[str, float] | None = None,
    mean_util: Mapping[str, float] | None = None,
    hours: int = 24 * 30,
    seed: int = 0,
) -> FleetTrace:
    """Generate a synthetic month-long fleet utilization trace.

    Utilization per type follows a diurnal sinusoid plus AR(1) noise,
    clipped to [0, 1], with the requested per-type mean.
    """
    portions = dict(DEFAULT_PORTIONS if portions is None else portions)
    mean_util = dict(DEFAULT_MEAN_UTIL if mean_util is None else mean_util)
    if set(portions) != set(mean_util):
        raise ValueError("portions and mean_util must cover the same GPU types")
    total = sum(portions.values())
    if total <= 0:
        raise ValueError("portions must sum to a positive value")

    types = tuple(sorted(portions))
    p = np.array([portions[t] / total for t in types])
    rng = np.random.default_rng(seed)

    hours_axis = np.arange(hours)
    diurnal = 0.08 * np.sin(2 * np.pi * hours_axis / 24.0)

    rows = []
    for t in types:
        noise = np.empty(hours)
        noise[0] = rng.normal(0, 0.02)
        eps = rng.normal(0, 0.02, size=hours)
        for k in range(1, hours):  # AR(1): persistence of load
            noise[k] = 0.9 * noise[k - 1] + eps[k]
        series = mean_util[t] + diurnal + noise
        rows.append(np.clip(series, 0.0, 1.0))
    util = np.vstack(rows)
    # Re-centre the clipped series so means land on the requested values
    # (clipping drags saturated types down slightly).
    for i, t in enumerate(types):
        target = np.clip(mean_util[t], 0.0, 1.0)
        util[i] += target - util[i].mean()
        util[i] = np.clip(util[i], 0.0, 1.0)
    return FleetTrace(gpu_types=types, portions=p, utilization=util)
