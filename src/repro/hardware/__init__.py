"""Hardware substrate: GPU device models, links, clusters, fleet traces."""

from .gpu import GPU_REGISTRY, SUPPORTED_BITS, GPUSpec, get_gpu, list_gpus, register_gpu
from .interconnect import (
    ETHERNET_100G,
    ETHERNET_800G,
    LOOPBACK,
    NVLINK_A100,
    NVLINK_A800,
    NVLINK_V100,
    PCIE_GEN3,
    Link,
    link_for,
)
from .cluster import PAPER_CLUSTERS, Cluster, Device, Node, make_cluster, paper_cluster
from .trace import DEFAULT_MEAN_UTIL, DEFAULT_PORTIONS, FleetTrace, generate_fleet_trace

__all__ = [
    "GPUSpec",
    "GPU_REGISTRY",
    "SUPPORTED_BITS",
    "get_gpu",
    "list_gpus",
    "register_gpu",
    "Link",
    "link_for",
    "LOOPBACK",
    "NVLINK_V100",
    "NVLINK_A100",
    "NVLINK_A800",
    "PCIE_GEN3",
    "ETHERNET_100G",
    "ETHERNET_800G",
    "Device",
    "Node",
    "Cluster",
    "make_cluster",
    "paper_cluster",
    "PAPER_CLUSTERS",
    "FleetTrace",
    "generate_fleet_trace",
    "DEFAULT_PORTIONS",
    "DEFAULT_MEAN_UTIL",
]
