"""GPU device models.

Every downstream component (latency cost model, pipeline simulator,
planner) consumes devices exclusively through :class:`GPUSpec`.  The spec
is a calibrated analytical stand-in for the physical GPUs used in the
paper's production cluster (Table 3): it carries the peak compute / memory
capabilities plus *per-precision kernel efficiency factors* that encode the
behaviours the paper's planner exploits:

* T4 has INT8 tensor cores, so its 8-bit kernels run close to FP16 speed
  (Sec. 2.5 of the paper), while V100's INT8 path is slower than FP16.
* Weight-only 3/4-bit GPTQ-style kernels shrink weight traffic by ~4x
  (helping the memory-bound decode phase) but pay a dequantization compute
  overhead (hurting the compute-bound prefill phase) — the Fig. 5 effect
  where "FP16 leads to the fastest inference in many cases".

All units are SI: bytes, seconds, FLOP/s, bytes/s.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from types import MappingProxyType
from typing import Mapping

__all__ = [
    "GPUSpec",
    "GPU_REGISTRY",
    "get_gpu",
    "register_gpu",
    "list_gpus",
    "SUPPORTED_BITS",
]

#: Quantization bitwidths the serving stack understands (paper Sec. 6.1).
SUPPORTED_BITS: tuple[int, ...] = (3, 4, 8, 16)

GB = 1e9
GIB = 2**30
TFLOP = 1e12


@dataclass(frozen=True)
class GPUSpec:
    """Analytical model of one GPU type.

    Attributes
    ----------
    name:
        Canonical name, e.g. ``"V100-32G"``.
    memory_bytes:
        Usable device memory (framework overhead already carved out by the
        memory cost model, not here).
    fp16_tflops:
        Peak dense FP16 throughput in TFLOP/s (tensor cores where present).
    mem_bandwidth:
        Peak DRAM bandwidth in bytes/s.
    compute_scale:
        Per-bitwidth multiplicative factor on effective FLOP/s.  ``1.0``
        means "as fast as FP16"; values above 1 model genuine low-precision
        tensor-core speedups, values below 1 model dequantization overhead
        or slow integer paths.
    weight_bw_scale:
        Per-bitwidth multiplicative factor on effective *weight-streaming*
        bandwidth.  Weight-only kernels read quantized weights, so the
        bytes moved shrink with the bitwidth; minor inefficiency of the
        packed formats is folded in here.
    kernel_launch_overhead:
        Fixed per-layer-invocation overhead in seconds (kernel launches,
        framework dispatch).
    compute_efficiency:
        Achievable fraction of peak FLOP/s for transformer GEMM shapes
        (model FLOPs utilization); realistic serving stacks land well
        under the marketing peak.
    bandwidth_efficiency:
        Achievable fraction of peak DRAM bandwidth for the streaming
        access patterns of decode.
    intra_node_bandwidth:
        Bandwidth of the intra-node interconnect this GPU ships with
        (NVLink or PCIe), bytes/s.
    tensor_core_int8:
        Whether INT8 matmuls run on tensor cores.
    """

    name: str
    memory_bytes: float
    fp16_tflops: float
    mem_bandwidth: float
    compute_scale: Mapping[int, float]
    weight_bw_scale: Mapping[int, float]
    kernel_launch_overhead: float = 4e-6
    intra_node_bandwidth: float = 64 * GB
    tensor_core_int8: bool = False
    compute_efficiency: float = 0.42
    bandwidth_efficiency: float = 0.72

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError(f"{self.name}: memory_bytes must be positive")
        if self.fp16_tflops <= 0:
            raise ValueError(f"{self.name}: fp16_tflops must be positive")
        if self.mem_bandwidth <= 0:
            raise ValueError(f"{self.name}: mem_bandwidth must be positive")
        for bits in SUPPORTED_BITS:
            if bits not in self.compute_scale:
                raise ValueError(f"{self.name}: missing compute_scale[{bits}]")
            if bits not in self.weight_bw_scale:
                raise ValueError(f"{self.name}: missing weight_bw_scale[{bits}]")
        # Freeze the mappings so specs are safely shareable.
        object.__setattr__(self, "compute_scale", MappingProxyType(dict(self.compute_scale)))
        object.__setattr__(self, "weight_bw_scale", MappingProxyType(dict(self.weight_bw_scale)))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def peak_flops(self) -> float:
        """Peak FP16 throughput in FLOP/s."""
        return self.fp16_tflops * TFLOP

    def effective_flops(self, bits: int) -> float:
        """Achievable FLOP/s when operating a ``bits``-wide kernel."""
        return self.peak_flops * self.compute_scale[bits] * self.compute_efficiency

    def effective_weight_bandwidth(self, bits: int) -> float:
        """Achievable bytes/s for streaming ``bits``-quantized weights."""
        return (
            self.mem_bandwidth
            * self.weight_bw_scale[bits]
            * self.bandwidth_efficiency
        )

    @property
    def effective_bandwidth(self) -> float:
        """Achievable bytes/s for generic activation / KV traffic."""
        return self.mem_bandwidth * self.bandwidth_efficiency

    @property
    def arithmetic_intensity(self) -> float:
        """FLOP per byte at FP16 peak — the roofline ridge point.

        The paper quotes V100 at 139 FLOP/B (125 TFLOPS / 900 GB/s);
        this property reproduces that number for our V100 spec.
        """
        return self.peak_flops / self.mem_bandwidth

    def supports(self, bits: int) -> bool:
        """Whether this GPU has a kernel for ``bits``-wide weights."""
        return bits in self.compute_scale

    def with_memory(self, memory_bytes: float) -> "GPUSpec":
        """A copy of this spec with a different memory capacity."""
        return replace(self, memory_bytes=memory_bytes)


# ----------------------------------------------------------------------
# Registry of the GPU types appearing in the paper's clusters (Table 3).
#
# compute_scale rationale per device:
#   16 : baseline.
#   8  : bitsandbytes-style decomposition kernels.  Near-FP16 on INT8
#        tensor-core parts (T4, A100/A800), clearly slower on V100/P100
#        whose INT8 path is emulated (paper Sec. 2.5).
#   4/3: GPTQ weight-only kernels — activations stay FP16, weights are
#        dequantized on the fly, costing extra compute everywhere; the
#        penalty is harsher on older parts with less integer throughput.
# weight_bw_scale rationale: quantized weights move bits/16 of the bytes;
# packing inefficiency and scale/zero metadata shave a few percent, and
# 3-bit's awkward packing is the least efficient.
# ----------------------------------------------------------------------

_WEIGHT_BW = {16: 1.0, 8: 0.97, 4: 0.95, 3: 0.90}

GPU_REGISTRY: dict[str, GPUSpec] = {}


def register_gpu(spec: GPUSpec) -> GPUSpec:
    """Add ``spec`` to the global registry (idempotent for equal specs)."""
    existing = GPU_REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise ValueError(f"GPU {spec.name!r} already registered with a different spec")
    GPU_REGISTRY[spec.name] = spec
    return spec


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU type by name, e.g. ``get_gpu("T4-16G")``."""
    try:
        return GPU_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(GPU_REGISTRY))
        raise KeyError(f"unknown GPU {name!r}; known: {known}") from None


def list_gpus() -> list[str]:
    """Sorted names of all registered GPU types."""
    return sorted(GPU_REGISTRY)


register_gpu(
    GPUSpec(
        name="A100-40G",
        memory_bytes=40 * GIB,
        fp16_tflops=312.0,
        mem_bandwidth=1555 * GB,
        compute_scale={16: 1.0, 8: 1.05, 4: 0.80, 3: 0.70},
        weight_bw_scale=_WEIGHT_BW,
        intra_node_bandwidth=600 * GB,
        tensor_core_int8=True,
    )
)

register_gpu(
    GPUSpec(
        name="A800-80G",
        memory_bytes=80 * GIB,
        fp16_tflops=312.0,
        mem_bandwidth=2039 * GB,
        compute_scale={16: 1.0, 8: 1.05, 4: 0.80, 3: 0.70},
        weight_bw_scale=_WEIGHT_BW,
        intra_node_bandwidth=400 * GB,
        tensor_core_int8=True,
    )
)

register_gpu(
    GPUSpec(
        name="A100-80G",
        memory_bytes=80 * GIB,
        fp16_tflops=312.0,
        mem_bandwidth=2039 * GB,
        compute_scale={16: 1.0, 8: 1.05, 4: 0.80, 3: 0.70},
        weight_bw_scale=_WEIGHT_BW,
        intra_node_bandwidth=600 * GB,
        tensor_core_int8=True,
    )
)

register_gpu(
    GPUSpec(
        name="A10-24G",
        memory_bytes=24 * GIB,
        fp16_tflops=125.0,
        mem_bandwidth=600 * GB,
        # Ampere inference card: INT8 tensor cores like the T4
        compute_scale={16: 1.0, 8: 1.05, 4: 0.80, 3: 0.70},
        weight_bw_scale=_WEIGHT_BW,
        intra_node_bandwidth=16 * GB,  # PCIe gen4 x8 effective
        tensor_core_int8=True,
    )
)

register_gpu(
    GPUSpec(
        name="V100-32G",
        memory_bytes=32 * GIB,
        fp16_tflops=125.0,
        mem_bandwidth=900 * GB,
        # INT8 runs on the (FP16) tensor cores only via emulation: slower
        # than FP16, the effect called out in Sec. 2.5.
        compute_scale={16: 1.0, 8: 0.60, 4: 0.70, 3: 0.60},
        weight_bw_scale=_WEIGHT_BW,
        intra_node_bandwidth=300 * GB,
        tensor_core_int8=False,
    )
)

register_gpu(
    GPUSpec(
        name="T4-16G",
        memory_bytes=16 * GIB,
        fp16_tflops=65.0,
        mem_bandwidth=300 * GB,
        # INT8 tensor cores: 8-bit is as fast as FP16 even after the
        # bitsandbytes decomposition overhead.
        compute_scale={16: 1.0, 8: 1.00, 4: 0.75, 3: 0.65},
        weight_bw_scale=_WEIGHT_BW,
        intra_node_bandwidth=16 * GB,  # PCIe gen3 x16
        tensor_core_int8=True,
    )
)

register_gpu(
    GPUSpec(
        name="P100-12G",
        memory_bytes=12 * GIB,
        fp16_tflops=18.7,
        mem_bandwidth=549 * GB,
        # Pascal: no tensor cores at all; every low-precision path is
        # dequantize-then-FP16 with hefty overheads.
        compute_scale={16: 1.0, 8: 0.50, 4: 0.55, 3: 0.45},
        weight_bw_scale=_WEIGHT_BW,
        kernel_launch_overhead=6e-6,
        intra_node_bandwidth=16 * GB,
        tensor_core_int8=False,
    )
)
