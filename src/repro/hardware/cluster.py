"""Cluster topology: nodes, devices and the Table-3 presets.

A :class:`Cluster` is a set of :class:`Node` objects, each holding one or
more GPUs of a single type (as in the paper: "GPUs of the same type are
located on the same node, intra-connected with NV-LINK") joined by an
inter-node Ethernet link.

The planner works with *device orderings*: a permutation of all devices
defining the pipeline order.  Because devices of the same type are
interchangeable, the number of distinct orderings is the multinomial
coefficient over type counts — :meth:`Cluster.distinct_orderings`
enumerates exactly one representative per distinct type-sequence, which is
the pruning Algorithm 1 relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from .gpu import GPUSpec, get_gpu
from .interconnect import (
    ETHERNET_100G,
    ETHERNET_800G,
    LOOPBACK,
    Link,
    link_for,
)

__all__ = [
    "Device",
    "Node",
    "Cluster",
    "make_cluster",
    "paper_cluster",
    "PAPER_CLUSTERS",
]


@dataclass(frozen=True)
class Device:
    """One physical GPU: a spec plus its location in the cluster."""

    spec: GPUSpec
    node_id: int
    local_rank: int

    @property
    def name(self) -> str:
        """Globally unique device name, e.g. ``T4-16G@n0.1``."""
        return f"{self.spec.name}@n{self.node_id}.{self.local_rank}"

    @property
    def type_name(self) -> str:
        """GPU type, e.g. ``T4-16G``."""
        return self.spec.name


@dataclass(frozen=True)
class Node:
    """A host machine holding homogeneous GPUs."""

    node_id: int
    gpu_type: str
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("node must hold at least one GPU")
        get_gpu(self.gpu_type)  # validate eagerly

    @property
    def devices(self) -> tuple[Device, ...]:
        """The node's member devices."""
        spec = get_gpu(self.gpu_type)
        return tuple(Device(spec, self.node_id, r) for r in range(self.count))

    @property
    def intra_link(self) -> Link:
        """The node's internal fabric (NVLink or PCIe)."""
        return link_for(self.gpu_type)


@dataclass(frozen=True)
class Cluster:
    """A heterogeneous (or homogeneous) GPU cluster.

    Parameters
    ----------
    nodes:
        The member nodes.
    inter_node_link:
        Link used between any two devices on different nodes.
    name:
        Optional human-readable label (e.g. ``"cluster-3"``).
    """

    nodes: tuple[Node, ...]
    inter_node_link: Link = ETHERNET_100G
    name: str = "cluster"

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster needs at least one node")
        ids = [n.node_id for n in self.nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids")

    # ------------------------------------------------------------------
    @property
    def devices(self) -> tuple[Device, ...]:
        """All devices, node-major order."""
        out: list[Device] = []
        for node in self.nodes:
            out.extend(node.devices)
        return tuple(out)

    @property
    def num_devices(self) -> int:
        """Total GPUs in the cluster."""
        return sum(n.count for n in self.nodes)

    @property
    def total_memory_bytes(self) -> float:
        """Aggregate device memory."""
        return sum(d.spec.memory_bytes for d in self.devices)

    @property
    def gpu_type_counts(self) -> dict[str, int]:
        """Map GPU type name -> number of devices of that type."""
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.gpu_type] = counts.get(node.gpu_type, 0) + node.count
        return counts

    @property
    def is_heterogeneous(self) -> bool:
        """More than one GPU type present."""
        return len(self.gpu_type_counts) > 1

    def link_between(self, a: Device, b: Device) -> Link:
        """The link crossed when sending activations from ``a`` to ``b``."""
        if a == b:
            return LOOPBACK
        if a.node_id == b.node_id:
            return link_for(a.type_name)
        return self.inter_node_link

    # ------------------------------------------------------------------
    # Device-ordering enumeration (Algorithm 1's GetDeviceOrder).
    # ------------------------------------------------------------------
    def distinct_orderings(self, limit: int | None = None) -> Iterator[tuple[Device, ...]]:
        """Yield pipeline orderings, one per distinct GPU-*type* sequence.

        Devices of the same type are interchangeable for planning, so we
        enumerate multiset permutations of the type sequence and greedily
        bind concrete devices to each slot, preferring to keep same-type
        neighbours on the same node (cheaper links).
        """
        by_type: dict[str, list[Device]] = {}
        for dev in self.devices:
            by_type.setdefault(dev.type_name, []).append(dev)
        type_seq = sorted(by_type)
        counts = [len(by_type[t]) for t in type_seq]

        emitted = 0
        for perm in _multiset_permutations(type_seq, counts):
            pools = {t: list(devs) for t, devs in by_type.items()}
            ordering = tuple(pools[t].pop(0) for t in perm)
            yield ordering
            emitted += 1
            if limit is not None and emitted >= limit:
                return

    def num_distinct_orderings(self) -> int:
        """Multinomial count of distinct type sequences."""
        import math

        total = self.num_devices
        out = math.factorial(total)
        for c in self.gpu_type_counts.values():
            out //= math.factorial(c)
        return out

    def describe(self) -> str:
        """``name: 3xT4-16G + 1xV100-32G``-style summary."""
        parts = [f"{n.count}x{n.gpu_type}" for n in self.nodes]
        return f"{self.name}: " + " + ".join(parts)


def _multiset_permutations(values: Sequence[str], counts: Sequence[int]) -> Iterator[tuple[str, ...]]:
    """Distinct permutations of a multiset, lexicographic, no duplicates."""
    pool: list[str] = []
    for v, c in zip(values, counts):
        pool.extend([v] * c)
    seen_prefix: set[tuple[str, ...]] = set()

    def rec(remaining: list[str], prefix: list[str]) -> Iterator[tuple[str, ...]]:
        if not remaining:
            yield tuple(prefix)
            return
        used: set[str] = set()
        for i, v in enumerate(remaining):
            if v in used:
                continue
            used.add(v)
            yield from rec(remaining[:i] + remaining[i + 1 :], prefix + [v])

    yield from rec(pool, [])


def make_cluster(
    spec: Sequence[tuple[str, int]],
    *,
    inter_node_link: Link = ETHERNET_100G,
    name: str = "cluster",
) -> Cluster:
    """Build a cluster from ``[(gpu_type, count), ...]`` — one node per entry.

    Example
    -------
    >>> c = make_cluster([("T4-16G", 3), ("V100-32G", 1)], name="cluster-3")
    >>> c.num_devices
    4
    """
    nodes = tuple(Node(node_id=i, gpu_type=t, count=c) for i, (t, c) in enumerate(spec))
    return Cluster(nodes=nodes, inter_node_link=inter_node_link, name=name)


# ----------------------------------------------------------------------
# Table 3 presets.  ``model`` records which model the paper serves there.
# Clusters 1,2,9,10,11 are single-node; 3,5,8,11 use 800G Ethernet and
# 4,6,7 use 100G Ethernet (single-node clusters never cross it).
# ----------------------------------------------------------------------
_PAPER_SPECS: dict[int, tuple[list[tuple[str, int]], Link, str]] = {
    1: ([("V100-32G", 1)], ETHERNET_100G, "opt-13b"),
    2: ([("A100-40G", 1)], ETHERNET_100G, "opt-13b"),
    3: ([("T4-16G", 3), ("V100-32G", 1)], ETHERNET_800G, "opt-30b"),
    4: ([("P100-12G", 3), ("V100-32G", 1)], ETHERNET_100G, "opt-30b"),
    5: ([("T4-16G", 4), ("V100-32G", 2)], ETHERNET_800G, "opt-66b"),
    6: ([("V100-32G", 2), ("A100-40G", 2)], ETHERNET_100G, "opt-66b"),
    7: ([("V100-32G", 4), ("A100-40G", 4)], ETHERNET_100G, "bloom-176b"),
    8: ([("V100-32G", 4), ("A800-80G", 2)], ETHERNET_800G, "bloom-176b"),
    9: ([("T4-16G", 4)], ETHERNET_100G, "opt-30b"),
    10: ([("V100-32G", 4)], ETHERNET_100G, "opt-66b"),
    11: ([("A800-80G", 4)], ETHERNET_800G, "bloom-176b"),
}

#: Cluster id -> model key served there in the paper's evaluation.
PAPER_CLUSTERS: dict[int, str] = {cid: model for cid, (_, _, model) in _PAPER_SPECS.items()}


def paper_cluster(cluster_id: int) -> Cluster:
    """One of the paper's Table-3 clusters (1..11)."""
    try:
        spec, link, _ = _PAPER_SPECS[cluster_id]
    except KeyError:
        raise KeyError(f"paper clusters are 1..11, got {cluster_id}") from None
    return make_cluster(spec, inter_node_link=link, name=f"cluster-{cluster_id}")
