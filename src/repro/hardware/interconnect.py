"""Interconnect (link) models.

Pipeline-parallel serving moves one activation tensor per micro-batch
between adjacent stages.  We model every link with the classic
alpha-beta model ``t = alpha + bytes / beta`` where ``alpha`` is the
per-message latency and ``beta`` the sustained bandwidth.

Links come in three flavours matching the paper's clusters:

* intra-node NVLink (V100 / A100 / A800 nodes),
* intra-node PCIe (T4 / P100 nodes),
* inter-node Ethernet at 100 Gbps or 800 Gbps (Table 3's cluster notes).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Link",
    "NVLINK_V100",
    "NVLINK_A100",
    "NVLINK_A800",
    "PCIE_GEN3",
    "ETHERNET_100G",
    "ETHERNET_800G",
    "LOOPBACK",
    "link_for",
]

GB = 1e9


@dataclass(frozen=True)
class Link:
    """A point-to-point link with an alpha-beta cost model."""

    name: str
    bandwidth: float  #: sustained bytes/s
    latency: float  #: per-message seconds (alpha)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"{self.name}: latency must be non-negative")

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move ``nbytes`` across this link."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth


#: Same-device "link" — stage boundaries that do not cross GPUs.
LOOPBACK = Link("loopback", bandwidth=1e15, latency=0.0)

NVLINK_V100 = Link("nvlink-v100", bandwidth=300 * GB, latency=3e-6)
NVLINK_A100 = Link("nvlink-a100", bandwidth=600 * GB, latency=3e-6)
NVLINK_A800 = Link("nvlink-a800", bandwidth=400 * GB, latency=3e-6)
PCIE_GEN3 = Link("pcie-gen3-x16", bandwidth=16 * GB, latency=8e-6)
ETHERNET_100G = Link("ethernet-100g", bandwidth=12.5 * GB, latency=30e-6)
ETHERNET_800G = Link("ethernet-800g", bandwidth=100 * GB, latency=20e-6)

_INTRA_NODE = {
    "A100-40G": NVLINK_A100,
    "A800-80G": NVLINK_A800,
    "V100-32G": NVLINK_V100,
    "T4-16G": PCIE_GEN3,
    "P100-12G": PCIE_GEN3,
}


def link_for(gpu_name: str) -> Link:
    """The intra-node link a GPU of this type ships with."""
    try:
        return _INTRA_NODE[gpu_name]
    except KeyError:
        return PCIE_GEN3
