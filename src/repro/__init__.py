"""repro: reproduction of LLM-PQ (PPoPP 2024).

Serving LLMs on heterogeneous clusters with phase-aware partition and
adaptive quantization — planner, cost models, quantization theory, and a
simulated heterogeneous-cluster serving substrate.

Quickstart
----------
>>> from repro import plan_llmpq, evaluate_plan
>>> from repro.hardware import paper_cluster
>>> from repro.workload import DEFAULT_WORKLOAD
>>> result = plan_llmpq("opt-30b", paper_cluster(3), DEFAULT_WORKLOAD)
>>> report = evaluate_plan(result.plan, paper_cluster(3))
"""

from __future__ import annotations

__version__ = "1.0.0"

# PEP 562 lazy re-exports: ``import repro.workload`` (trace generation) or
# ``import repro.cost`` (pricing) must not drag in the planner stack or the
# simulators.  Attributes resolve to their home submodule on first access.
_EXPORTS = {
    "ExecutionPlan": ".core",
    "StagePlan": ".core",
    "LLMPQOptimizer": ".core",
    "PlannerConfig": ".core",
    "PlannerResult": ".core",
    "ServingReport": ".core",
    "plan_llmpq": ".core",
    "evaluate_plan": ".core",
    "compare_schemes": ".core",
    "Workload": ".workload",
    "DEFAULT_WORKLOAD": ".workload",
    "SHORT_PROMPT_WORKLOAD": ".workload",
}

__all__ = [*_EXPORTS, "__version__"]


def __getattr__(name: str):
    home = _EXPORTS.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(home, __name__), name)


def __dir__() -> list[str]:
    return sorted(__all__)
