"""repro: reproduction of LLM-PQ (PPoPP 2024).

Serving LLMs on heterogeneous clusters with phase-aware partition and
adaptive quantization — planner, cost models, quantization theory, and a
simulated heterogeneous-cluster serving substrate.

Quickstart
----------
>>> from repro import plan_llmpq, evaluate_plan
>>> from repro.hardware import paper_cluster
>>> from repro.workload import DEFAULT_WORKLOAD
>>> result = plan_llmpq("opt-30b", paper_cluster(3), DEFAULT_WORKLOAD)
>>> report = evaluate_plan(result.plan, paper_cluster(3))
"""

from .core import (
    ExecutionPlan,
    LLMPQOptimizer,
    PlannerConfig,
    PlannerResult,
    ServingReport,
    StagePlan,
    compare_schemes,
    evaluate_plan,
    plan_llmpq,
)
from .workload import DEFAULT_WORKLOAD, SHORT_PROMPT_WORKLOAD, Workload

__version__ = "1.0.0"

__all__ = [
    "ExecutionPlan",
    "StagePlan",
    "LLMPQOptimizer",
    "PlannerConfig",
    "PlannerResult",
    "ServingReport",
    "plan_llmpq",
    "evaluate_plan",
    "compare_schemes",
    "Workload",
    "DEFAULT_WORKLOAD",
    "SHORT_PROMPT_WORKLOAD",
    "__version__",
]
