"""ILP for joint bitwidth assignment + layer partition (paper Sec. 4.3).

Given a *fixed* device ordering and micro-batch pair, the remaining
decision is: which contiguous run of layer groups goes on which device,
and at which bitwidth each group runs.  Binary variables

``z[i, j, b] = 1``  iff layer-group ``i`` sits on device ``j`` at ``b`` bits

with the paper's constraints:

* (9)-(11) each group gets exactly one (device, bitwidth);
* (15)-(16) contiguity — group ``i-1`` may not sit on a *later* device
  than group ``i``;
* (12)-(13) per-device memory: weights at chosen bits + KV cache for the
  whole batch + embedding / LM-head / workspace extras must fit;
* auxiliary continuous ``T_pre_max / T_dec_max`` upper-bound every
  stage's phase time, linearizing the pipeline-latency objective

``min  theta_lat * [ T_pre_sum + (m_p - 1) T_pre_max
                     + (n - 1) (T_dec_sum + (m_d - 1) T_dec_max) ]
       + theta * sum omega[i, b] z[i, j, b]``

Solved with ``scipy.optimize.milp`` (HiGHS) — the open-source stand-in
for the paper's GUROBI.
"""

from __future__ import annotations

import contextlib
import os
import sys
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..cost.latency import LatencyModel
from ..cost.memory import (
    FRAMEWORK_OVERHEAD_BYTES,
    embedding_bytes,
    kv_cache_bytes,
    logits_workspace_bytes,
    temp_bytes_decode,
    temp_bytes_prefill,
)
from ..hardware.cluster import Device
from ..models.config import ModelConfig
from ..quant.indicator import IndicatorTable
from ..workload.spec import Workload

__all__ = ["ILPSolution", "BitAssignmentILP"]


@contextlib.contextmanager
def _quiet_fd1():
    """Silence HiGHS's direct-to-fd-1 debug prints during a solve."""
    sys.stdout.flush()
    saved = os.dup(1)
    devnull = os.open(os.devnull, os.O_WRONLY)
    try:
        os.dup2(devnull, 1)
        yield
    finally:
        os.dup2(saved, 1)
        os.close(saved)
        os.close(devnull)


@dataclass(frozen=True)
class ILPSolution:
    """Solver output: per-group device index and bitwidth."""

    group_device: tuple[int, ...]
    group_bits: tuple[int, ...]
    objective: float
    latency_term: float
    quality_term: float
    status: str
    solve_seconds: float

    @property
    def feasible(self) -> bool:
        """True when the solver proved an optimal assignment."""
        return self.status == "optimal"


@dataclass
class BitAssignmentILP:
    """Builds and solves the Sec.-4.3 ILP for one configuration.

    Parameters
    ----------
    cfg, workload:
        Model architecture and offline workload.
    devices:
        Pipeline-ordered devices (a candidate ordering from Algorithm 1).
    latency_model:
        Fitted per-(gpu, bits, phase) cost model.
    indicator:
        omega table, already *grouped* to ``num_groups`` rows.
    bits:
        Candidate precisions.
    group_size:
        Layers per group (Optimization #2).
    theta:
        Quality-vs-latency scalar (higher = favour quality).
    include_latency:
        ``False`` gives the paper's "adabits" reduced problem (quality
        only under memory constraints) used to seed Algorithm 2.
    phase_aware:
        ``False`` drops the decode phase from the latency objective — a
        PipeEdge-style single-phase view used by the phase-awareness
        ablation.  Memory constraints are unaffected.
    """

    cfg: ModelConfig
    workload: Workload
    devices: Sequence[Device]
    latency_model: LatencyModel
    indicator: IndicatorTable
    prefill_microbatch: int
    decode_microbatch: int
    bits: tuple[int, ...] = (3, 4, 8, 16)
    group_size: int = 1
    theta: float = 1.0
    include_latency: bool = True
    phase_aware: bool = True
    kv_bits: int = 16
    time_limit: float = 60.0

    # ------------------------------------------------------------------
    def _group_sizes(self) -> list[int]:
        L = self.cfg.num_layers
        g = self.group_size
        sizes = [g] * (L // g)
        if L % g:
            sizes.append(L % g)
        return sizes

    def _coefficients(self):
        """Latency, memory and quality coefficients per (group, dev, bit)."""
        w = self.workload
        sizes = self._group_sizes()
        n_groups, n_dev, n_bits = len(sizes), len(self.devices), len(self.bits)
        avg_ctx = w.prompt_len + max(w.decode_passes, 1) // 2

        t_pre = np.zeros((n_groups, n_dev, n_bits))
        t_dec = np.zeros((n_groups, n_dev, n_bits))
        mem = np.zeros((n_groups, n_bits))
        omega = np.zeros((n_groups, n_bits))

        per_layer_kv = kv_cache_bytes(
            self.cfg, 1, w.global_batch, w.max_seq_len, kv_bits=self.kv_bits
        )
        for j, dev in enumerate(self.devices):
            for k, b in enumerate(self.bits):
                lp = self.latency_model.predict_layer(
                    dev.spec, b, "prefill", self.prefill_microbatch, w.prompt_len, w.prompt_len
                )
                ld = self.latency_model.predict_layer(
                    dev.spec, b, "decode", self.decode_microbatch, 1, avg_ctx
                )
                for i, gs in enumerate(sizes):
                    t_pre[i, j, k] = gs * lp
                    t_dec[i, j, k] = gs * ld
        for k, b in enumerate(self.bits):
            layer_bytes = self.cfg.layer_weight_bytes(b) + per_layer_kv
            for i, gs in enumerate(sizes):
                mem[i, k] = gs * layer_bytes
        if self.indicator.num_layers != n_groups:
            raise ValueError(
                f"indicator has {self.indicator.num_layers} rows, expected "
                f"{n_groups} groups (did you call .grouped({self.group_size})?)"
            )
        for k, b in enumerate(self.bits):
            omega[:, k] = self.indicator.column(b)
        return sizes, t_pre, t_dec, mem, omega

    def _device_capacity(self, j: int) -> float:
        """Memory budget of device ``j`` after fixed per-stage extras."""
        w = self.workload
        dev = self.devices[j]
        cap = dev.spec.memory_bytes - FRAMEWORK_OVERHEAD_BYTES
        temp = max(
            temp_bytes_prefill(self.cfg, self.prefill_microbatch, w.prompt_len),
            temp_bytes_decode(self.cfg, self.decode_microbatch, w.max_seq_len),
        )
        cap -= temp
        if j == 0:
            cap -= embedding_bytes(self.cfg)
        if j == len(self.devices) - 1:
            if j != 0:
                cap -= embedding_bytes(self.cfg)
            mb = max(self.prefill_microbatch, self.decode_microbatch)
            cap -= logits_workspace_bytes(self.cfg, mb, 1)
        return cap

    # ------------------------------------------------------------------
    def solve(self) -> ILPSolution:
        """Build the MILP and solve it with HiGHS; returns the assignment."""
        import time

        t0 = time.perf_counter()
        sizes, t_pre, t_dec, mem, omega = self._coefficients()
        w = self.workload
        nG, nD, nB = len(sizes), len(self.devices), len(self.bits)
        nZ = nG * nD * nB

        def zidx(i: int, j: int, k: int) -> int:
            return (i * nD + j) * nB + k

        # variables: [z..., T_pre_max, T_dec_max]
        n_var = nZ + 2
        ip, idx_td = nZ, nZ + 1

        m_p = -(-w.global_batch // self.prefill_microbatch)
        m_d = -(-w.global_batch // self.decode_microbatch)
        n_pass = max(w.decode_passes, 0) if self.phase_aware else 0

        c = np.zeros(n_var)
        lat_scale = 1.0 if self.include_latency else 0.0
        # latency term: sum of stage times + (m-1) * max stage time
        for i in range(nG):
            for j in range(nD):
                for k in range(nB):
                    c[zidx(i, j, k)] = lat_scale * (
                        t_pre[i, j, k] + n_pass * t_dec[i, j, k]
                    ) + self.theta * omega[i, k]
        c[ip] = lat_scale * (m_p - 1)
        c[idx_td] = lat_scale * n_pass * (m_d - 1)

        constraints: list[LinearConstraint] = []
        rows: list[tuple[dict[int, float], float, float]] = []

        # (9) exactly one (device, bits) per group
        for i in range(nG):
            coefs = {zidx(i, j, k): 1.0 for j in range(nD) for k in range(nB)}
            rows.append((coefs, 1.0, 1.0))

        # every device hosts at least one group (a pipeline stage must not
        # be empty — matches the paper's runtime, one worker per GPU)
        for j in range(nD):
            coefs = {zidx(i, j, k): 1.0 for i in range(nG) for k in range(nB)}
            rows.append((coefs, 1.0, float(nG)))

        # (16) contiguity: group i on j and group i-1 on k>j forbidden
        for i in range(1, nG):
            for j in range(nD - 1):
                for k2 in range(j + 1, nD):
                    coefs: dict[int, float] = {}
                    for kb in range(nB):
                        coefs[zidx(i, j, kb)] = 1.0
                        coefs[zidx(i - 1, k2, kb)] = coefs.get(zidx(i - 1, k2, kb), 0.0) + 1.0
                    rows.append((coefs, -np.inf, 1.0))

        # (12)-(13) memory per device
        for j in range(nD):
            coefs = {
                zidx(i, j, k): mem[i, k] for i in range(nG) for k in range(nB)
            }
            cap = self._device_capacity(j)
            if cap <= 0:
                # device cannot host anything at this micro-batch setting
                return ILPSolution(
                    group_device=(), group_bits=(), objective=np.inf,
                    latency_term=np.inf, quality_term=np.inf,
                    status="infeasible", solve_seconds=time.perf_counter() - t0,
                )
            rows.append((coefs, -np.inf, cap))

        # T_max definitions: sum_i,k z[i,j,k] * t[i,j,k] - T_max <= 0
        for j in range(nD):
            coefs = {zidx(i, j, k): t_pre[i, j, k] for i in range(nG) for k in range(nB)}
            coefs[ip] = -1.0
            rows.append((coefs, -np.inf, 0.0))
            coefs = {zidx(i, j, k): t_dec[i, j, k] for i in range(nG) for k in range(nB)}
            coefs[idx_td] = -1.0
            rows.append((coefs, -np.inf, 0.0))

        data, ri, ci, lo, hi = [], [], [], [], []
        for r, (coefs, lb, ub) in enumerate(rows):
            for col, val in coefs.items():
                ri.append(r)
                ci.append(col)
                data.append(val)
            lo.append(lb)
            hi.append(ub)
        A = sparse.csr_matrix((data, (ri, ci)), shape=(len(rows), n_var))
        constraints.append(LinearConstraint(A, lo, hi))

        integrality = np.zeros(n_var)
        integrality[:nZ] = 1
        bounds = Bounds(
            lb=np.zeros(n_var),
            ub=np.concatenate([np.ones(nZ), [np.inf, np.inf]]),
        )
        with _quiet_fd1():
            res = milp(
                c,
                constraints=constraints,
                integrality=integrality,
                bounds=bounds,
                options={"time_limit": self.time_limit, "mip_rel_gap": 1e-4},
            )
        dt = time.perf_counter() - t0
        if res.status != 0 or res.x is None:
            return ILPSolution(
                group_device=(), group_bits=(), objective=np.inf,
                latency_term=np.inf, quality_term=np.inf,
                status="infeasible", solve_seconds=dt,
            )
        z = res.x[:nZ].reshape(nG, nD, nB)
        gdev, gbits = [], []
        for i in range(nG):
            j, k = np.unravel_index(np.argmax(z[i]), (nD, nB))
            gdev.append(int(j))
            gbits.append(self.bits[int(k)])
        quality_term = float(
            sum(omega[i, self.bits.index(gbits[i])] for i in range(nG))
        )
        latency_term = float(res.fun - self.theta * quality_term) if self.include_latency else 0.0
        return ILPSolution(
            group_device=tuple(gdev),
            group_bits=tuple(gbits),
            objective=float(res.fun),
            latency_term=latency_term,
            quality_term=quality_term,
            status="optimal",
            solve_seconds=dt,
        )

    # ------------------------------------------------------------------
    def expand_groups(
        self, sol: ILPSolution
    ) -> tuple[list[int], list[int]]:
        """Ungroup a solution back to per-layer (device_idx, bits) lists."""
        sizes = self._group_sizes()
        dev_per_layer: list[int] = []
        bits_per_layer: list[int] = []
        for gs, d, b in zip(sizes, sol.group_device, sol.group_bits):
            dev_per_layer.extend([d] * gs)
            bits_per_layer.extend([b] * gs)
        return dev_per_layer, bits_per_layer
