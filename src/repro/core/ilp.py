"""ILP for joint bitwidth assignment + layer partition (paper Sec. 4.3).

Given a *fixed* device ordering and micro-batch pair, the remaining
decision is: which contiguous run of layer groups goes on which device,
and at which bitwidth each group runs.  Binary variables

``z[i, j, b] = 1``  iff layer-group ``i`` sits on device ``j`` at ``b`` bits

with the paper's constraints:

* (9)-(11) each group gets exactly one (device, bitwidth);
* (15)-(16) contiguity — group ``i-1`` may not sit on a *later* device
  than group ``i``;
* (12)-(13) per-device memory: weights at chosen bits + KV cache for the
  whole batch + embedding / LM-head / workspace extras must fit;
* auxiliary continuous ``T_pre_max / T_dec_max`` upper-bound every
  stage's phase time, linearizing the pipeline-latency objective

``min  theta_lat * [ T_pre_sum + (m_p - 1) T_pre_max
                     + (n - 1) (T_dec_sum + (m_d - 1) T_dec_max) ]
       + theta * sum omega[i, b] z[i, j, b]``

Solved with ``scipy.optimize.milp`` (HiGHS) — the open-source stand-in
for the paper's GUROBI.

The build/solve split matters for the parallel planner
(:mod:`repro.core.search`): :meth:`BitAssignmentILP.assemble` produces a
self-contained, picklable :class:`AssembledILP` in the parent process
(reusing the shared :class:`~repro.cost.predictions.PredictionCache`),
and the module-level :func:`solve_assembled` / :func:`lp_lower_bound`
run in worker processes with nothing but that payload.  Constraint
matrices are built with numpy index arrays — the legacy Python dict-loop
builder is kept as ``assemble(legacy=True)`` purely as the equality
oracle for tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..cost.latency import LatencyModel
from ..cost.memory import (
    FRAMEWORK_OVERHEAD_BYTES,
    embedding_bytes,
    kv_cache_bytes,
    logits_workspace_bytes,
    temp_bytes_decode,
    temp_bytes_prefill,
)
from ..cost.predictions import PredictionCache
from ..cost.stagecosts import planner_time_tables
from ..hardware.cluster import Device
from ..models.config import ModelConfig
from ..quant.indicator import IndicatorTable
from ..workload.spec import Workload

__all__ = [
    "ILPSolution",
    "AssembledILP",
    "BitAssignmentILP",
    "solve_assembled",
    "lp_lower_bound",
]

# NOTE: earlier revisions wrapped every solve in an fd-1 dup/dup2 dance
# ("_quiet_fd1") to mute HiGHS debug prints.  scipy >= 1.9 passes
# ``output_flag=False`` to HiGHS itself unless ``disp`` is requested, so
# the solver is silent without touching process-global file descriptors —
# which the redirection raced on under concurrent solves (two overlapping
# dup2 calls could permanently point fd 1 at /dev/null).  The context
# manager is gone; ``tests/core/test_ilp.py`` keeps a concurrent-solve
# regression test against stdout corruption.


@dataclass(frozen=True)
class ILPSolution:
    """Solver output: per-group device index and bitwidth."""

    group_device: tuple[int, ...]
    group_bits: tuple[int, ...]
    objective: float
    latency_term: float
    quality_term: float
    status: str
    solve_seconds: float

    @property
    def feasible(self) -> bool:
        """True when the solver proved an optimal assignment."""
        return self.status == "optimal"


def _infeasible(seconds: float) -> ILPSolution:
    return ILPSolution(
        group_device=(), group_bits=(), objective=np.inf,
        latency_term=np.inf, quality_term=np.inf,
        status="infeasible", solve_seconds=seconds,
    )


@dataclass(frozen=True)
class AssembledILP:
    """One candidate's fully built MILP, detached from its builder.

    Everything a worker process needs to solve and decode the problem:
    objective vector ``c``, constraint matrix ``A`` with row bounds
    ``lo``/``hi`` (variables are ``[z..., T_pre_max, T_dec_max]``), and
    the metadata to map the solution back to (device, bits) per group.
    """

    c: np.ndarray
    A: sparse.csr_matrix
    lo: np.ndarray
    hi: np.ndarray
    num_groups: int
    num_devices: int
    bits: tuple[int, ...]
    theta: float
    omega: np.ndarray
    include_latency: bool
    time_limit: float

    @property
    def num_z(self) -> int:
        """Count of binary placement variables."""
        return self.num_groups * self.num_devices * len(self.bits)


def _milp_bounds(prob: AssembledILP) -> tuple[Bounds, np.ndarray]:
    n_var = prob.num_z + 2
    integrality = np.zeros(n_var)
    integrality[: prob.num_z] = 1
    bounds = Bounds(
        lb=np.zeros(n_var),
        ub=np.concatenate([np.ones(prob.num_z), [np.inf, np.inf]]),
    )
    return bounds, integrality


def solve_assembled(prob: AssembledILP) -> ILPSolution:
    """Solve one assembled MILP with HiGHS and decode the assignment.

    Module-level and dependent only on the (picklable) payload so the
    parallel planner can ship it to ``ProcessPoolExecutor`` workers.
    """
    import time

    t0 = time.perf_counter()
    bounds, integrality = _milp_bounds(prob)
    res = milp(
        prob.c,
        constraints=[LinearConstraint(prob.A, prob.lo, prob.hi)],
        integrality=integrality,
        bounds=bounds,
        options={"time_limit": prob.time_limit, "mip_rel_gap": 1e-4},
    )
    dt = time.perf_counter() - t0
    if res.status != 0 or res.x is None:
        return _infeasible(dt)
    nG, nD, nB = prob.num_groups, prob.num_devices, len(prob.bits)
    z = res.x[: prob.num_z].reshape(nG, nD, nB)
    gdev, gbits = [], []
    for i in range(nG):
        j, k = np.unravel_index(np.argmax(z[i]), (nD, nB))
        gdev.append(int(j))
        gbits.append(prob.bits[int(k)])
    quality_term = float(
        sum(prob.omega[i, prob.bits.index(gbits[i])] for i in range(nG))
    )
    latency_term = (
        float(res.fun - prob.theta * quality_term) if prob.include_latency else 0.0
    )
    return ILPSolution(
        group_device=tuple(gdev),
        group_bits=tuple(gbits),
        objective=float(res.fun),
        latency_term=latency_term,
        quality_term=quality_term,
        status="optimal",
        solve_seconds=dt,
    )


def lp_lower_bound(prob: AssembledILP) -> float:
    """Admissible lower bound: optimum of the LP relaxation.

    Dropping integrality can only lower the optimum, so this bounds the
    MILP objective from below; the MILP objective in turn lower-bounds
    the planner's final ``simulate + theta * quality`` score (the
    simulator adds communication, embedding work and pipeline bubbles on
    top of the same cost-model terms, and evaluates decode at per-step
    contexts whose mean dominates the ILP's ``avg_ctx``).  Returns
    ``+inf`` when even the relaxation is infeasible (the candidate can be
    discarded outright) and ``-inf`` when the LP did not finish (never
    prune on an unproven bound).
    """
    bounds, _ = _milp_bounds(prob)
    res = milp(
        prob.c,
        constraints=[LinearConstraint(prob.A, prob.lo, prob.hi)],
        integrality=np.zeros(prob.num_z + 2),
        bounds=bounds,
        options={"time_limit": prob.time_limit},
    )
    if res.status == 2:  # proven infeasible
        return np.inf
    if res.status == 0 and res.fun is not None:
        return float(res.fun)
    return -np.inf


@dataclass
class BitAssignmentILP:
    """Builds and solves the Sec.-4.3 ILP for one configuration.

    Parameters
    ----------
    cfg, workload:
        Model architecture and offline workload.
    devices:
        Pipeline-ordered devices (a candidate ordering from Algorithm 1).
    latency_model:
        Fitted per-(gpu, bits, phase) cost model.
    indicator:
        omega table, already *grouped* to ``num_groups`` rows.
    bits:
        Candidate precisions.
    group_size:
        Layers per group (Optimization #2).
    theta:
        Quality-vs-latency scalar (higher = favour quality).
    include_latency:
        ``False`` gives the paper's "adabits" reduced problem (quality
        only under memory constraints) used to seed Algorithm 2.
    phase_aware:
        ``False`` drops the decode phase from the latency objective — a
        PipeEdge-style single-phase view used by the phase-awareness
        ablation.  Memory constraints are unaffected.
    prediction_cache:
        Optional shared :class:`PredictionCache`; when set, coefficient
        tables are filled from the memo instead of per-cell
        ``predict_layer`` calls (numerically identical).
    """

    cfg: ModelConfig
    workload: Workload
    devices: Sequence[Device]
    latency_model: LatencyModel
    indicator: IndicatorTable
    prefill_microbatch: int
    decode_microbatch: int
    bits: tuple[int, ...] = (3, 4, 8, 16)
    group_size: int = 1
    theta: float = 1.0
    include_latency: bool = True
    phase_aware: bool = True
    kv_bits: int = 16
    time_limit: float = 60.0
    prediction_cache: PredictionCache | None = None

    # ------------------------------------------------------------------
    def _group_sizes(self) -> list[int]:
        L = self.cfg.num_layers
        g = self.group_size
        sizes = [g] * (L // g)
        if L % g:
            sizes.append(L % g)
        return sizes

    def _coefficients(self, *, legacy: bool = False):
        """Latency, memory and quality coefficients per (group, dev, bit).

        The default path fills the per-(device, bits) layer-time tables
        with vectorized (and, when a cache is attached, memoized)
        queries; ``legacy=True`` reproduces the original scalar
        ``predict_layer`` loop for the equality tests.
        """
        w = self.workload
        sizes = self._group_sizes()
        n_groups, n_dev, n_bits = len(sizes), len(self.devices), len(self.bits)
        avg_ctx = w.prompt_len + max(w.decode_passes, 1) // 2

        omega = np.zeros((n_groups, n_bits))
        per_layer_kv = kv_cache_bytes(
            self.cfg, 1, w.global_batch, w.max_seq_len, kv_bits=self.kv_bits
        )

        if legacy:
            t_pre = np.zeros((n_groups, n_dev, n_bits))
            t_dec = np.zeros((n_groups, n_dev, n_bits))
            mem = np.zeros((n_groups, n_bits))
            for j, dev in enumerate(self.devices):
                for k, b in enumerate(self.bits):
                    lp = self.latency_model.predict_layer(
                        dev.spec, b, "prefill", self.prefill_microbatch,
                        w.prompt_len, w.prompt_len, kv_bits=self.kv_bits,
                    )
                    ld = self.latency_model.predict_layer(
                        dev.spec, b, "decode", self.decode_microbatch, 1, avg_ctx,
                        kv_bits=self.kv_bits,
                    )
                    for i, gs in enumerate(sizes):
                        t_pre[i, j, k] = gs * lp
                        t_dec[i, j, k] = gs * ld
            for k, b in enumerate(self.bits):
                layer_bytes = self.cfg.layer_weight_bytes(b) + per_layer_kv
                for i, gs in enumerate(sizes):
                    mem[i, k] = gs * layer_bytes
        else:
            cache = self.prediction_cache or PredictionCache(self.latency_model)
            type_names = [d.type_name for d in self.devices]
            # the same (device, bits) layer-time blocks a source="model"
            # StageCostModel serves to the simulators
            lp, ld = planner_time_tables(
                cache, type_names, self.bits,
                prefill_microbatch=self.prefill_microbatch,
                decode_microbatch=self.decode_microbatch,
                prompt_len=w.prompt_len, avg_context=avg_ctx,
                kv_bits=self.kv_bits,
            )
            sizes_arr = np.asarray(sizes, dtype=np.float64)
            t_pre = sizes_arr[:, None, None] * lp[None, :, :]
            t_dec = sizes_arr[:, None, None] * ld[None, :, :]
            layer_bytes = (
                np.array([self.cfg.layer_weight_bytes(b) for b in self.bits])
                + per_layer_kv
            )
            mem = sizes_arr[:, None] * layer_bytes[None, :]

        if self.indicator.num_layers != n_groups:
            raise ValueError(
                f"indicator has {self.indicator.num_layers} rows, expected "
                f"{n_groups} groups (did you call .grouped({self.group_size})?)"
            )
        for k, b in enumerate(self.bits):
            omega[:, k] = self.indicator.column(b)
        return sizes, t_pre, t_dec, mem, omega

    def _device_capacity(self, j: int) -> float:
        """Memory budget of device ``j`` after fixed per-stage extras."""
        w = self.workload
        dev = self.devices[j]
        cap = dev.spec.memory_bytes - FRAMEWORK_OVERHEAD_BYTES
        temp = max(
            temp_bytes_prefill(self.cfg, self.prefill_microbatch, w.prompt_len),
            temp_bytes_decode(self.cfg, self.decode_microbatch, w.max_seq_len),
        )
        cap -= temp
        if j == 0:
            cap -= embedding_bytes(self.cfg)
        if j == len(self.devices) - 1:
            if j != 0:
                cap -= embedding_bytes(self.cfg)
            mb = max(self.prefill_microbatch, self.decode_microbatch)
            cap -= logits_workspace_bytes(self.cfg, mb, 1)
        return cap

    # ------------------------------------------------------------------
    def _objective_vector(self, t_pre, t_dec, omega, n_var, n_pass, m_p, m_d):
        nZ = n_var - 2
        lat_scale = 1.0 if self.include_latency else 0.0
        c = np.empty(n_var)
        c[:nZ] = (
            lat_scale * (t_pre + n_pass * t_dec) + self.theta * omega[:, None, :]
        ).ravel()
        c[nZ] = lat_scale * (m_p - 1)
        c[nZ + 1] = lat_scale * n_pass * (m_d - 1)
        return c

    def assemble(self, *, legacy: bool = False) -> AssembledILP | None:
        """Build the full MILP; ``None`` when a device capacity is already
        negative (no assignment can exist at this micro-batch setting).

        ``legacy=True`` routes through the original scalar-coefficient
        and dict-loop constraint builder — kept only so tests can assert
        the vectorized assembly is exactly equal.
        """
        sizes, t_pre, t_dec, mem, omega = self._coefficients(legacy=legacy)
        w = self.workload
        nG, nD, nB = len(sizes), len(self.devices), len(self.bits)
        nZ = nG * nD * nB
        n_var = nZ + 2

        m_p = -(-w.global_batch // self.prefill_microbatch)
        m_d = -(-w.global_batch // self.decode_microbatch)
        n_pass = max(w.decode_passes, 0) if self.phase_aware else 0

        caps = np.array([self._device_capacity(j) for j in range(nD)])
        if np.any(caps <= 0):
            return None

        if legacy:
            c = np.zeros(n_var)
            for i in range(nG):
                for j in range(nD):
                    for k in range(nB):
                        lat_scale = 1.0 if self.include_latency else 0.0
                        c[(i * nD + j) * nB + k] = lat_scale * (
                            t_pre[i, j, k] + n_pass * t_dec[i, j, k]
                        ) + self.theta * omega[i, k]
            lat_scale = 1.0 if self.include_latency else 0.0
            c[nZ] = lat_scale * (m_p - 1)
            c[nZ + 1] = lat_scale * n_pass * (m_d - 1)
            A, lo, hi = self._constraints_legacy(t_pre, t_dec, mem, caps, nG, nD, nB)
        else:
            c = self._objective_vector(t_pre, t_dec, omega, n_var, n_pass, m_p, m_d)
            A, lo, hi = self._constraints_vectorized(
                t_pre, t_dec, mem, caps, nG, nD, nB
            )
        return AssembledILP(
            c=c, A=A, lo=lo, hi=hi,
            num_groups=nG, num_devices=nD, bits=tuple(self.bits),
            theta=self.theta, omega=omega,
            include_latency=self.include_latency, time_limit=self.time_limit,
        )

    # ------------------------------------------------------------------
    def _constraints_vectorized(self, t_pre, t_dec, mem, caps, nG, nD, nB):
        """Constraint matrix from numpy index arrays (no Python dict loops).

        Row layout (identical to the legacy builder):
        one-assignment per group | non-empty device | contiguity |
        memory per device | per-device (T_pre, T_dec) definitions.
        """
        nZ = nG * nD * nB
        n_var = nZ + 2
        ip, idx_td = nZ, nZ + 1

        # full (i, j, k) -> column lattice, reused by several blocks
        cols_ijk = (
            (np.arange(nG)[:, None, None] * nD + np.arange(nD)[None, :, None]) * nB
            + np.arange(nB)[None, None, :]
        )  # shape (nG, nD, nB)

        data_parts: list[np.ndarray] = []
        ri_parts: list[np.ndarray] = []
        ci_parts: list[np.ndarray] = []
        lo_parts: list[np.ndarray] = []
        hi_parts: list[np.ndarray] = []
        row_base = 0

        def add_block(ri, ci, data, lo, hi, n_rows):
            nonlocal row_base
            ri_parts.append(np.asarray(ri).ravel() + row_base)
            ci_parts.append(np.asarray(ci).ravel())
            data_parts.append(np.asarray(data, dtype=np.float64).ravel())
            lo_parts.append(np.asarray(lo, dtype=np.float64).ravel())
            hi_parts.append(np.asarray(hi, dtype=np.float64).ravel())
            row_base += n_rows

        # (9) exactly one (device, bits) per group: row i covers z[i, :, :]
        add_block(
            ri=np.repeat(np.arange(nG), nD * nB),
            ci=cols_ijk,
            data=np.ones(nZ),
            lo=np.ones(nG),
            hi=np.ones(nG),
            n_rows=nG,
        )

        # every device hosts at least one group: row j covers z[:, j, :]
        add_block(
            ri=np.repeat(np.arange(nD), nG * nB),
            ci=np.swapaxes(cols_ijk, 0, 1),
            data=np.ones(nZ),
            lo=np.ones(nD),
            hi=np.full(nD, float(nG)),
            n_rows=nD,
        )

        # (16) contiguity: for i >= 1 and device pair j < k2,
        #   sum_b z[i, j, b] + sum_b z[i-1, k2, b] <= 1
        if nG > 1 and nD > 1:
            j_arr, k2_arr = np.triu_indices(nD, k=1)
            P = j_arr.size
            ii = np.arange(1, nG)
            kb = np.arange(nB)
            cur = ((ii[:, None, None] * nD + j_arr[None, :, None]) * nB
                   + kb[None, None, :])  # (nG-1, P, nB)
            prev = (((ii - 1)[:, None, None] * nD + k2_arr[None, :, None]) * nB
                    + kb[None, None, :])
            ci = np.concatenate(
                [cur.reshape(-1, nB), prev.reshape(-1, nB)], axis=1
            )  # ((nG-1)*P, 2*nB)
            n_rows = (nG - 1) * P
            add_block(
                ri=np.repeat(np.arange(n_rows), 2 * nB),
                ci=ci,
                data=np.ones(n_rows * 2 * nB),
                lo=np.full(n_rows, -np.inf),
                hi=np.ones(n_rows),
                n_rows=n_rows,
            )

        # (12)-(13) memory per device: row j is sum_{i,b} mem[i,b] z[i,j,b]
        add_block(
            ri=np.repeat(np.arange(nD), nG * nB),
            ci=np.swapaxes(cols_ijk, 0, 1),
            data=np.broadcast_to(mem[:, None, :], (nG, nD, nB)).swapaxes(0, 1),
            lo=np.full(nD, -np.inf),
            hi=caps,
            n_rows=nD,
        )

        # T_max definitions: interleaved (prefill, decode) rows per device
        dev_rows = np.repeat(np.arange(nD) * 2, nG * nB)
        cols_dev = np.swapaxes(cols_ijk, 0, 1).reshape(nD, -1)
        t_pre_dev = t_pre.swapaxes(0, 1).reshape(nD, -1)
        t_dec_dev = t_dec.swapaxes(0, 1).reshape(nD, -1)
        ri_t = np.concatenate(
            [dev_rows, dev_rows + 1, np.arange(nD) * 2, np.arange(nD) * 2 + 1]
        )
        ci_t = np.concatenate(
            [cols_dev.ravel(), cols_dev.ravel(),
             np.full(nD, ip), np.full(nD, idx_td)]
        )
        data_t = np.concatenate(
            [t_pre_dev.ravel(), t_dec_dev.ravel(),
             np.full(nD, -1.0), np.full(nD, -1.0)]
        )
        add_block(
            ri=ri_t, ci=ci_t, data=data_t,
            lo=np.full(2 * nD, -np.inf), hi=np.zeros(2 * nD), n_rows=2 * nD,
        )

        A = sparse.csr_matrix(
            (np.concatenate(data_parts),
             (np.concatenate(ri_parts), np.concatenate(ci_parts))),
            shape=(row_base, n_var),
        )
        return A, np.concatenate(lo_parts), np.concatenate(hi_parts)

    def _constraints_legacy(self, t_pre, t_dec, mem, caps, nG, nD, nB):
        """The original dict-loop constraint builder (equality oracle)."""
        nZ = nG * nD * nB
        n_var = nZ + 2
        ip, idx_td = nZ, nZ + 1

        def zidx(i: int, j: int, k: int) -> int:
            return (i * nD + j) * nB + k

        rows: list[tuple[dict[int, float], float, float]] = []
        for i in range(nG):
            coefs = {zidx(i, j, k): 1.0 for j in range(nD) for k in range(nB)}
            rows.append((coefs, 1.0, 1.0))
        for j in range(nD):
            coefs = {zidx(i, j, k): 1.0 for i in range(nG) for k in range(nB)}
            rows.append((coefs, 1.0, float(nG)))
        for i in range(1, nG):
            for j in range(nD - 1):
                for k2 in range(j + 1, nD):
                    coefs: dict[int, float] = {}
                    for kb in range(nB):
                        coefs[zidx(i, j, kb)] = 1.0
                        coefs[zidx(i - 1, k2, kb)] = (
                            coefs.get(zidx(i - 1, k2, kb), 0.0) + 1.0
                        )
                    rows.append((coefs, -np.inf, 1.0))
        for j in range(nD):
            coefs = {
                zidx(i, j, k): mem[i, k] for i in range(nG) for k in range(nB)
            }
            rows.append((coefs, -np.inf, caps[j]))
        for j in range(nD):
            coefs = {
                zidx(i, j, k): t_pre[i, j, k] for i in range(nG) for k in range(nB)
            }
            coefs[ip] = -1.0
            rows.append((coefs, -np.inf, 0.0))
            coefs = {
                zidx(i, j, k): t_dec[i, j, k] for i in range(nG) for k in range(nB)
            }
            coefs[idx_td] = -1.0
            rows.append((coefs, -np.inf, 0.0))

        data, ri, ci, lo, hi = [], [], [], [], []
        for r, (coefs, lb, ub) in enumerate(rows):
            for col, val in coefs.items():
                ri.append(r)
                ci.append(col)
                data.append(val)
            lo.append(lb)
            hi.append(ub)
        A = sparse.csr_matrix((data, (ri, ci)), shape=(len(rows), n_var))
        return A, np.asarray(lo), np.asarray(hi)

    # ------------------------------------------------------------------
    def solve(self, *, legacy: bool = False) -> ILPSolution:
        """Build the MILP and solve it with HiGHS; returns the assignment.

        ``legacy=True`` assembles through the original scalar/dict-loop
        builder (for tests and the planner-speed baseline); the solved
        problem is identical either way.
        """
        import time

        t0 = time.perf_counter()
        prob = self.assemble(legacy=legacy)
        if prob is None:
            return _infeasible(time.perf_counter() - t0)
        sol = solve_assembled(prob)
        # account assembly time into the reported solve time
        return ILPSolution(
            group_device=sol.group_device,
            group_bits=sol.group_bits,
            objective=sol.objective,
            latency_term=sol.latency_term,
            quality_term=sol.quality_term,
            status=sol.status,
            solve_seconds=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------
    def expand_groups(
        self, sol: ILPSolution
    ) -> tuple[list[int], list[int]]:
        """Ungroup a solution back to per-layer (device_idx, bits) lists."""
        sizes = self._group_sizes()
        dev_per_layer: list[int] = []
        bits_per_layer: list[int] = []
        for gs, d, b in zip(sizes, sol.group_device, sol.group_bits):
            dev_per_layer.extend([d] * gs)
            bits_per_layer.extend([b] * gs)
        return dev_per_layer, bits_per_layer
