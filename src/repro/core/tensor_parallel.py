"""Tensor-parallelism extension (paper Sec. 7, "Search for Tensor
Parallelization").

The paper sketches how TP folds into LLM-PQ's search space: *"we can
view the device along the tensor-parallel dimension as a new device with
larger memory and different kernel performance (as tensor-parallel will
introduce some communication overhead), and it is still a 1-d partition
problem along another axis."*  This module implements exactly that:

* :func:`fuse_tp_group` builds a **virtual GPU spec** for ``k`` same-type
  devices sharding every layer ``k``-way: ``k``-fold memory and compute,
  discounted by an allreduce-overhead factor derived from the intra-node
  link (two allreduces of the activation tensor per layer, ring-allreduce
  cost ``2 (k-1)/k * bytes / bw``);
* :func:`enumerate_tp_clusters` enumerates uniform TP degrees per GPU
  type (the realizable device meshes) and rewrites the cluster with
  virtual devices;
* :func:`plan_with_tensor_parallel` runs the unchanged 1-D planner on
  every fused cluster and returns the best (plan, tp-degree) pair.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..hardware.cluster import Cluster, make_cluster
from ..hardware.gpu import GPU_REGISTRY, GPUSpec, get_gpu, register_gpu
from ..hardware.interconnect import link_for
from ..models.config import ModelConfig
from ..workload.spec import Workload
from .optimizer import LLMPQOptimizer, PlannerConfig, PlannerResult

__all__ = [
    "tp_efficiency",
    "fuse_tp_group",
    "enumerate_tp_clusters",
    "TPPlanResult",
    "plan_with_tensor_parallel",
]


def tp_efficiency(
    spec: GPUSpec,
    k: int,
    cfg: ModelConfig,
    *,
    batch: int = 8,
    seq: int = 512,
) -> float:
    """Fraction of the ideal ``k``-fold speedup TP retains.

    Per decoder layer, Megatron-style TP performs two allreduces of the
    ``(batch, seq, hidden)`` activation over the intra-node link; the
    efficiency is compute / (compute + comm) at a representative
    prefill shape.
    """
    if k <= 1:
        return 1.0
    flops = cfg.prefill_layer_flops(batch, seq)
    compute = flops / (spec.effective_flops(16) * k)
    act_bytes = batch * seq * cfg.hidden_size * 2.0
    link = link_for(spec.name)
    comm = 2 * (2.0 * (k - 1) / k) * act_bytes / link.bandwidth + 2 * link.latency
    return float(compute / (compute + comm))


def fuse_tp_group(gpu_type: str, k: int, cfg: ModelConfig) -> GPUSpec:
    """Virtual spec for ``k`` ``gpu_type`` devices in one TP group.

    Memory and bandwidth aggregate ``k``-fold (weights and KV shard
    evenly); compute aggregates ``k``-fold discounted by the allreduce
    efficiency.  The virtual spec is registered so clusters/plans built
    from it serialize like any other.
    """
    if k < 1:
        raise ValueError("TP degree must be >= 1")
    spec = get_gpu(gpu_type)
    if k == 1:
        return spec
    name = f"{gpu_type}-tp{k}"
    if name in GPU_REGISTRY:
        return GPU_REGISTRY[name]
    eff = tp_efficiency(spec, k, cfg)
    fused = replace(
        spec,
        name=name,
        memory_bytes=spec.memory_bytes * k,
        fp16_tflops=spec.fp16_tflops * k * eff,
        mem_bandwidth=spec.mem_bandwidth * k,
        compute_scale=dict(spec.compute_scale),
        weight_bw_scale=dict(spec.weight_bw_scale),
    )
    return register_gpu(fused)


def enumerate_tp_clusters(
    cluster: Cluster, cfg: ModelConfig, *, max_tp: int = 8
) -> list[tuple[int, Cluster]]:
    """All uniform TP degrees realizable on ``cluster``.

    A degree ``k`` is realizable when it divides every node's GPU count
    (TP groups never span nodes — the paper keeps TP inside NVLink
    domains).  Returns ``[(k, fused_cluster), ...]`` with ``k = 1`` first.
    """
    counts = [n.count for n in cluster.nodes]
    out: list[tuple[int, Cluster]] = []
    for k in range(1, max_tp + 1):
        if any(c % k for c in counts):
            continue
        spec_list = []
        for node in cluster.nodes:
            fused = fuse_tp_group(node.gpu_type, k, cfg)
            spec_list.append((fused.name, node.count // k))
        out.append(
            (
                k,
                make_cluster(
                    spec_list,
                    inter_node_link=cluster.inter_node_link,
                    name=f"{cluster.name}-tp{k}",
                ),
            )
        )
    return out


@dataclass(frozen=True)
class TPPlanResult:
    """Best plan across tensor-parallel degrees."""

    tp_degree: int
    result: PlannerResult
    per_degree: dict[int, float]  #: tp -> best objective found

    @property
    def plan(self):
        """The winning execution plan (or None)."""
        return self.result.plan


def plan_with_tensor_parallel(
    model_name: str,
    cluster: Cluster,
    workload: Workload,
    *,
    config: PlannerConfig | None = None,
    max_tp: int = 4,
) -> TPPlanResult:
    """Extend Algorithm 1 with the TP dimension (Sec.-7 sketch).

    For every realizable uniform TP degree the cluster is rewritten with
    virtual fused devices and the standard pipeline planner runs
    unchanged; the best objective wins.
    """
    from ..models.registry import get_model

    cfg = get_model(model_name)
    best: PlannerResult | None = None
    best_k = 1
    per_degree: dict[int, float] = {}
    for k, fused in enumerate_tp_clusters(cluster, cfg, max_tp=max_tp):
        optimizer = LLMPQOptimizer(
            model_name, fused, workload, config=config,
        )
        res = optimizer.optimize()
        per_degree[k] = res.objective
        if res.feasible and (best is None or res.objective < best.objective):
            best, best_k = res, k
    if best is None:
        best = PlannerResult(
            plan=None, objective=float("inf"), predicted=None,
            candidates=(), total_seconds=0.0,
        )
    return TPPlanResult(tp_degree=best_k, result=best, per_degree=per_degree)
