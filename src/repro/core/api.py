"""High-level public API: plan, evaluate, and compare serving schemes.

This is the facade the examples and benchmark harness drive; one call per
paper concept:

* :func:`plan_llmpq` — run the LLM-PQ assigner (exact ILP or heuristic);
* :func:`evaluate_plan` — ground-truth simulation + quality surrogate,
  producing a Table-4-style row;
* :func:`compare_schemes` — all schemes (LLM-PQ, PipeEdge, Uniform,
  FlexGen, FlexGen-int8, adabits) on one cluster/workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cost.latency import LatencyModel
from ..hardware.cluster import Cluster
from ..models.registry import get_model
from ..quant.indicator import IndicatorTable
from ..sim.offload import OffloadResult
from ..sim.pipeline import simulate_pipeline
from ..sim.quality import QUALITY_ANCHORS, plan_perplexity
from ..workload.spec import Workload
from .baselines import BaselineOutcome, flexgen_run, pipeedge_plan, uniform_plan
from .heuristic import adabits_plan, heuristic_optimize
from .optimizer import LLMPQOptimizer, PlannerConfig, PlannerResult
from .plan import ExecutionPlan

__all__ = [
    "ServingReport",
    "plan_llmpq",
    "evaluate_plan",
    "compare_schemes",
    "replan_after_failure",
]


@dataclass(frozen=True)
class ServingReport:
    """One scheme's evaluated outcome — a row of Tables 4/5/7."""

    scheme: str
    model_name: str
    feasible: bool
    perplexity: float
    latency: float
    throughput: float
    average_bits: float
    plan: ExecutionPlan | None = None
    offload: OffloadResult | None = None
    solve_seconds: float = 0.0

    def speedup_over(self, other: "ServingReport") -> float:
        """Throughput ratio vs a reference scheme (the paper's x column)."""
        if other.throughput <= 0:
            return float("inf") if self.throughput > 0 else 1.0
        return self.throughput / other.throughput

    def row(self) -> dict:
        """Table-ready dict of the headline metrics."""
        return {
            "scheme": self.scheme,
            "ppl": round(self.perplexity, 2) if np.isfinite(self.perplexity) else None,
            "latency_s": round(self.latency, 2) if np.isfinite(self.latency) else None,
            "throughput_tok_s": round(self.throughput, 2),
            "avg_bits": round(self.average_bits, 2) if np.isfinite(self.average_bits) else None,
        }


def plan_llmpq(
    model_name: str,
    cluster: Cluster,
    workload: Workload,
    *,
    theta: float = 1.0,
    group_size: int = 1,
    use_heuristic: bool = False,
    bits: tuple[int, ...] = (3, 4, 8, 16),
    latency_model: LatencyModel | None = None,
    indicator: IndicatorTable | None = None,
    ilp_time_limit: float = 60.0,
    max_orderings: int = 24,
    prefill_mb_cap: int | None = None,
    decode_mb_candidates: tuple[int, ...] | None = None,
    n_jobs: int = 1,
    kv_bits: int | str = 16,
) -> PlannerResult:
    """Run the LLM-PQ assigner end to end (Algorithm 1, or Algorithm 2
    when ``use_heuristic``).

    ``kv_bits`` adds the KV-cache bitwidth dimension: 16 keeps the fp16
    baseline, 8/4 plan with uniformly quantized KV, and ``"auto"``
    searches the levels and refines per stage.

    ``n_jobs > 1`` solves independent candidate MILPs in parallel worker
    processes; the chosen plan is unaffected (see
    :mod:`repro.core.search`).
    """
    optimizer = LLMPQOptimizer(
        model_name,
        cluster,
        workload,
        config=PlannerConfig(
            bits=bits,
            theta=theta,
            group_size=group_size,
            ilp_time_limit=ilp_time_limit,
            max_orderings=max_orderings,
            prefill_mb_cap=prefill_mb_cap,
            decode_mb_candidates=decode_mb_candidates,
            n_jobs=n_jobs,
            kv_bits=kv_bits,
        ),
        latency_model=latency_model,
        indicator=indicator,
    )
    if use_heuristic:
        return heuristic_optimize(optimizer)
    return optimizer.optimize()


def evaluate_plan(
    plan: ExecutionPlan,
    cluster: Cluster,
    *,
    scheme: str = "LLM-PQ",
    solve_seconds: float = 0.0,
    cost_source: str = "kernels",
    latency_model: LatencyModel | None = None,
) -> ServingReport:
    """Ground-truth simulation + quality surrogate for a plan.

    ``cost_source`` selects where the simulator's stage times come from:
    ``"kernels"`` (ground-truth roofline kernels, the default) or
    ``"model"`` (the planner's fitted latency model — the same numbers the
    ILP optimized, handy for checking planner/simulator drift).  A fitted
    model is profiled on demand when ``"model"`` is requested without one.
    """
    if cost_source not in ("kernels", "model"):
        raise ValueError(f"unknown cost_source {cost_source!r}")
    if cost_source == "model" and latency_model is None:
        from ..cost.profiler import build_latency_model

        latency_model = build_latency_model(
            sorted({d.type_name for d in cluster.devices}),
            get_model(plan.model_name),
        )
    res = simulate_pipeline(
        plan, cluster,
        latency_model=latency_model if cost_source == "model" else None,
    )
    ppl = (
        plan_perplexity(plan.model_name, plan.layer_bits)
        if plan.model_name in QUALITY_ANCHORS
        else float("nan")
    )
    return ServingReport(
        scheme=scheme,
        model_name=plan.model_name,
        feasible=res.feasible,
        perplexity=ppl,
        latency=res.total_latency,
        throughput=res.throughput,
        average_bits=plan.average_bits(),
        plan=plan,
        solve_seconds=solve_seconds,
    )


def _report_infeasible(scheme: str, model_name: str) -> ServingReport:
    return ServingReport(
        scheme=scheme, model_name=model_name, feasible=False,
        perplexity=float("nan"), latency=float("inf"), throughput=0.0,
        average_bits=float("nan"),
    )


def _report_offload(out: BaselineOutcome, model_name: str) -> ServingReport:
    if out.offload is None or not out.offload.feasible:
        return _report_infeasible(out.name, model_name)
    cfg = get_model(model_name)
    ppl = (
        plan_perplexity(model_name, [out.bits] * cfg.num_layers)
        if model_name in QUALITY_ANCHORS
        else float("nan")
    )
    return ServingReport(
        scheme=out.name,
        model_name=model_name,
        feasible=True,
        perplexity=ppl,
        latency=out.offload.total_latency,
        throughput=out.offload.throughput,
        average_bits=float(out.bits or 16),
        offload=out.offload,
    )


def replan_after_failure(
    plan: ExecutionPlan,
    failed_stage: int,
    *,
    cluster: Cluster | None = None,
    use_planner: bool = False,
    theta: float = 1.0,
    latency_model: LatencyModel | None = None,
) -> ExecutionPlan:
    """Re-plan onto the surviving devices after a permanent stage loss.

    The runtime's last degradation rung: when a stage's device is gone
    for good, its layers (with their assigned bitwidths) are
    redistributed to the surviving neighbours — leading layers to the
    upstream stage, trailing layers to the downstream one — preserving
    pipeline order and per-layer quantization so the degraded plan's
    outputs stay bit-identical to the original recipe.

    With ``use_planner=True`` and a ``cluster``, a full LLM-PQ re-plan
    is attempted on the surviving device set first (new partition *and*
    new bitwidths for the shrunken cluster), falling back to the
    deterministic redistribution if the planner finds nothing feasible.
    """
    if not 0 <= failed_stage < plan.num_stages:
        raise ValueError(f"failed_stage {failed_stage} out of range")
    if plan.num_stages == 1:
        raise ValueError("no surviving devices to re-plan on")

    meta = dict(plan.meta)
    meta["replanned_after_stage_failure"] = failed_stage
    meta["lost_device"] = plan.stages[failed_stage].device.name

    if use_planner and cluster is not None:
        from ..hardware.cluster import make_cluster

        counts: dict[str, int] = {}
        for j, st in enumerate(plan.stages):
            if j == failed_stage:
                continue
            counts[st.device.type_name] = counts.get(st.device.type_name, 0) + 1
        survivors = make_cluster(list(counts.items()), name="degraded")
        result = plan_llmpq(
            plan.model_name, survivors, plan.workload,
            theta=theta, latency_model=latency_model,
        )
        if result.plan is not None:
            replanned = result.plan
            meta.update(replanned.meta)
            return ExecutionPlan(
                model_name=replanned.model_name,
                stages=replanned.stages,
                prefill_microbatch=replanned.prefill_microbatch,
                decode_microbatch=replanned.decode_microbatch,
                workload=replanned.workload,
                meta=meta,
            )

    from .plan import StagePlan

    stages = list(plan.stages)
    failed = stages.pop(failed_stage)
    if failed_stage == 0:
        nxt = stages[0]
        stages[0] = StagePlan(
            nxt.device, failed.layer_bits + nxt.layer_bits, kv_bits=nxt.kv_bits
        )
    elif failed_stage == len(stages):  # was the last stage
        prev = stages[-1]
        stages[-1] = StagePlan(
            prev.device, prev.layer_bits + failed.layer_bits, kv_bits=prev.kv_bits
        )
    else:
        k = (len(failed.layer_bits) + 1) // 2  # leading half upstream
        prev = stages[failed_stage - 1]
        nxt = stages[failed_stage]
        stages[failed_stage - 1] = StagePlan(
            prev.device, prev.layer_bits + failed.layer_bits[:k],
            kv_bits=prev.kv_bits,
        )
        stages[failed_stage] = StagePlan(
            nxt.device, failed.layer_bits[k:] + nxt.layer_bits,
            kv_bits=nxt.kv_bits,
        )
    return ExecutionPlan(
        model_name=plan.model_name,
        stages=tuple(stages),
        prefill_microbatch=plan.prefill_microbatch,
        decode_microbatch=plan.decode_microbatch,
        workload=plan.workload,
        meta=meta,
    )


DEFAULT_SCHEMES = ("PipeEdge", "Uniform", "FlexGen", "FlexGen-int8", "LLM-PQ")


def compare_schemes(
    model_name: str,
    cluster: Cluster,
    workload: Workload,
    *,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    theta: float = 1.0,
    group_size: int = 1,
    use_heuristic: bool = False,
    latency_model: LatencyModel | None = None,
    ilp_time_limit: float = 60.0,
) -> list[ServingReport]:
    """Evaluate every requested scheme — the Table-4/5/7 row generator."""
    reports: list[ServingReport] = []
    for scheme in schemes:
        if scheme == "PipeEdge":
            out = pipeedge_plan(model_name, cluster, workload, latency_model=latency_model)
            reports.append(
                evaluate_plan(out.plan, cluster, scheme=out.name)
                if out.plan
                else _report_infeasible(out.name, model_name)
            )
        elif scheme == "Uniform":
            out = uniform_plan(model_name, cluster, workload, latency_model=latency_model)
            reports.append(
                evaluate_plan(out.plan, cluster, scheme=out.name)
                if out.plan
                else _report_infeasible(out.name, model_name)
            )
        elif scheme == "FlexGen":
            reports.append(
                _report_offload(flexgen_run(model_name, cluster, workload, bits=16), model_name)
            )
        elif scheme == "FlexGen-int8":
            reports.append(
                _report_offload(flexgen_run(model_name, cluster, workload, bits=8), model_name)
            )
        elif scheme == "LLM-PQ":
            res = plan_llmpq(
                model_name, cluster, workload, theta=theta, group_size=group_size,
                use_heuristic=use_heuristic, latency_model=latency_model,
                ilp_time_limit=ilp_time_limit,
            )
            reports.append(
                evaluate_plan(res.plan, cluster, scheme="LLM-PQ", solve_seconds=res.total_seconds)
                if res.plan
                else _report_infeasible("LLM-PQ", model_name)
            )
        elif scheme == "adabits":
            optimizer = LLMPQOptimizer(
                model_name, cluster, workload,
                config=PlannerConfig(theta=theta, group_size=group_size),
                latency_model=latency_model,
            )
            plan = adabits_plan(optimizer)
            reports.append(
                evaluate_plan(plan, cluster, scheme="adabits")
                if plan
                else _report_infeasible("adabits", model_name)
            )
        else:
            raise ValueError(f"unknown scheme {scheme!r}")
    return reports
