"""Baseline planners the paper compares against (Sec. 6.1).

* **PipeEdge** — uniform quantization (bitwidth lowered from FP16 until
  the model fits) + the PipeEdge heterogeneous partitioner: a dynamic
  program that minimizes the *single-phase* bottleneck stage time.  Being
  encoder-oriented, it balances prefill only — exactly the blind spot
  LLM-PQ's phase-aware objective fixes.
* **Uniform** — even layer split at a uniform precision (HF-Transformers
  / DeepSpeed style), micro-batch sizes picked to minimize latency.
* **FlexGen / FlexGen-int8** — even split with CPU/disk offloading (see
  :mod:`repro.sim.offload`); OPT-only, as in the paper.

Both PipeEdge and Uniform use one micro-batch size for both phases
(``global_batch / num_stages``), as the paper specifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cost.latency import LatencyModel
from ..cost.profiler import build_latency_model
from ..hardware.cluster import Cluster, Device
from ..models.registry import get_model
from ..sim.offload import OffloadResult, simulate_offload
from ..sim.pipeline import simulate_pipeline
from ..workload.spec import Workload
from .optimizer import _block_orderings
from .plan import ExecutionPlan, StagePlan

__all__ = [
    "pipeedge_plan",
    "uniform_plan",
    "flexgen_run",
    "BaselineOutcome",
]

BIT_LADDER = (16, 8, 4, 3)


@dataclass(frozen=True)
class BaselineOutcome:
    """A baseline's plan (or offload run) plus its chosen precision."""

    name: str
    plan: ExecutionPlan | None
    bits: int | None
    offload: OffloadResult | None = None

    @property
    def feasible(self) -> bool:
        """Whether the baseline produced a servable configuration."""
        if self.offload is not None:
            return self.offload.feasible
        return self.plan is not None


# ----------------------------------------------------------------------
# PipeEdge
# ----------------------------------------------------------------------
def _pipeedge_partition(
    cfg_name: str,
    devices: list[Device],
    workload: Workload,
    bits: int,
    latency_model: LatencyModel,
    mb: int,
) -> ExecutionPlan | None:
    """DP partition minimizing the bottleneck *prefill* stage time.

    ``f[i][j]`` = best achievable bottleneck when layers ``0..i-1`` occupy
    devices ``0..j``; memory feasibility is checked per stage via the
    simulator's memory model after reconstruction.
    """
    cfg = get_model(cfg_name)
    L, N = cfg.num_layers, len(devices)
    s = workload.prompt_len
    per_layer = np.array(
        [
            latency_model.predict_layer(d.spec, bits, "prefill", mb, s, s)
            for d in devices
        ]
    )

    INF = float("inf")
    f = np.full((L + 1, N), INF)
    choice = np.zeros((L + 1, N), dtype=int)
    for i in range(1, L + 1):
        f[i, 0] = i * per_layer[0]
    for j in range(1, N):
        for i in range(j + 1, L + 1):
            # layer counts on device j: i - k, previous k layers on 0..j-1
            for k in range(j, i):
                cand = max(f[k, j - 1], (i - k) * per_layer[j])
                if cand < f[i, j]:
                    f[i, j] = cand
                    choice[i, j] = k
    if not np.isfinite(f[L, N - 1]):
        return None
    counts = []
    i = L
    for j in range(N - 1, 0, -1):
        k = choice[i, j]
        counts.append(i - k)
        i = k
    counts.append(i)
    counts.reverse()
    stages = tuple(
        StagePlan(device=d, layer_bits=(bits,) * c)
        for d, c in zip(devices, counts)
        if c > 0
    )
    if not stages:
        return None
    return ExecutionPlan(
        model_name=cfg_name,
        stages=stages,
        prefill_microbatch=mb,
        decode_microbatch=mb,
        workload=workload,
        meta={"baseline": "pipeedge", "bits": bits},
    )


def pipeedge_plan(
    model_name: str,
    cluster: Cluster,
    workload: Workload,
    *,
    latency_model: LatencyModel | None = None,
) -> BaselineOutcome:
    """PipeEdge baseline: best block ordering, uniform bits lowered until
    a memory-feasible partition exists."""
    lat = latency_model or build_latency_model(
        [d.type_name for d in cluster.devices], get_model(model_name)
    )
    mb = max(1, workload.global_batch // cluster.num_devices)
    for bits in BIT_LADDER:
        best_plan, best_bottleneck = None, float("inf")
        for ordering in _block_orderings(cluster):
            plan = _pipeedge_partition(
                model_name, list(ordering), workload, bits, lat, mb
            )
            if plan is None:
                continue
            res = simulate_pipeline(plan, cluster, latency_model=lat)
            if not res.feasible:
                continue
            bottleneck = max(r.prefill_time for r in res.stage_reports)
            if bottleneck < best_bottleneck:
                best_bottleneck, best_plan = bottleneck, plan
        if best_plan is not None:
            return BaselineOutcome(name="PipeEdge", plan=best_plan, bits=bits)
    return BaselineOutcome(name="PipeEdge", plan=None, bits=None)


# ----------------------------------------------------------------------
# Uniform
# ----------------------------------------------------------------------
def uniform_plan(
    model_name: str,
    cluster: Cluster,
    workload: Workload,
    *,
    latency_model: LatencyModel | None = None,
) -> BaselineOutcome:
    """Even split at uniform precision; micro-batch chosen to minimize
    simulated latency (one size for both phases)."""
    lat = latency_model or build_latency_model(
        [d.type_name for d in cluster.devices], get_model(model_name)
    )
    b = workload.global_batch
    mb_candidates = sorted(
        {m for m in (1, 2, 4, 8, 16, 32, b, max(1, b // cluster.num_devices)) if m <= b}
    )
    for bits in BIT_LADDER:
        best_plan, best_latency = None, float("inf")
        for mb in mb_candidates:
            plan = ExecutionPlan.uniform(
                model_name,
                cluster.devices,
                workload,
                bits=bits,
                prefill_microbatch=mb,
                decode_microbatch=mb,
            )
            res = simulate_pipeline(plan, cluster, latency_model=lat)
            if res.feasible and res.total_latency < best_latency:
                best_latency, best_plan = res.total_latency, plan
        if best_plan is not None:
            return BaselineOutcome(name="Uniform", plan=best_plan, bits=bits)
    return BaselineOutcome(name="Uniform", plan=None, bits=None)


# ----------------------------------------------------------------------
# FlexGen
# ----------------------------------------------------------------------
def flexgen_run(
    model_name: str,
    cluster: Cluster,
    workload: Workload,
    *,
    bits: int = 16,
) -> BaselineOutcome:
    """FlexGen(-int8) offloading baseline.  OPT models only, as upstream."""
    if not model_name.startswith("opt"):
        return BaselineOutcome(
            name=f"FlexGen{'-int8' if bits == 8 else ''}", plan=None, bits=bits,
            offload=None,
        )
    off = simulate_offload(model_name, cluster, workload, bits=bits)
    return BaselineOutcome(
        name=f"FlexGen{'-int8' if bits == 8 else ''}",
        plan=None,
        bits=bits,
        offload=off,
    )
