"""Parallel, cache-aware search engine behind Algorithm 1.

The legacy planner walked the (ordering x micro-batch) candidate grid
serially, rebuilding cost-model coefficient tensors and the MILP
constraint matrix from scratch for every candidate and solving one HiGHS
instance at a time.  This engine keeps the result bit-identical while
removing the redundant work:

1. **dedup** — a candidate ILP depends on the ordering only through its
   GPU *type* sequence, so candidates sharing ``(type sequence, mb_p,
   mb_d)`` are byte-identical problems.  Each equivalence class is
   solved once and the solution fanned back out to every member (plans
   and simulations stay per-candidate: concrete device bindings can
   differ in link topology).
2. **memoized coefficients** — one :class:`PredictionCache` is shared by
   all candidates, so each distinct ``(gpu type, bits, phase, mb, q,
   ctx)`` cost-model query is evaluated once per planner run instead of
   once per candidate.
3. **admissible bounds, best-first** — every unique candidate gets an LP
   relaxation lower bound (:func:`lp_lower_bound`).  Candidates are
   solved in ascending-bound order, so the incumbent gets tight early.
4. **incumbent pruning** — a candidate whose bound already exceeds the
   incumbent objective cannot contain the winner (LP bound <= MILP
   optimum <= simulated objective) and is skipped without a MILP solve.
5. **parallel solves** — remaining MILPs are dispatched to a
   ``ProcessPoolExecutor`` (``PlannerConfig.n_jobs``); each worker
   receives a pre-assembled, picklable :class:`AssembledILP` so solver
   output and state stay confined to the worker process.

Pruning never changes the returned plan: the bound is admissible, and
ties on the final objective are broken by the candidate's legacy
enumeration index, exactly like the serial loop's strict-improvement
update.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..hardware.cluster import Device
from ..sim.pipeline import PipelineResult, simulate_pipeline
from .ilp import (
    AssembledILP,
    BitAssignmentILP,
    ILPSolution,
    lp_lower_bound,
    solve_assembled,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .optimizer import LLMPQOptimizer, PlannerResult

__all__ = ["PlannerStats", "SearchEngine"]


@dataclass(frozen=True)
class PlannerStats:
    """Work accounting of one search-engine run (surfaced in the CLI and
    benchmark tables)."""

    candidates_total: int = 0
    unique_candidates: int = 0
    dedup_skipped: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    pruned: int = 0
    solved: int = 0
    infeasible: int = 0
    bound_seconds: float = 0.0
    solve_wall_seconds: float = 0.0
    solve_cpu_seconds: float = 0.0
    n_jobs: int = 1
    total_seconds: float = 0.0

    def merged(self, other: "PlannerStats") -> "PlannerStats":
        """Field-wise sum of two runs (``n_jobs`` keeps the maximum) —
        used when one planner invocation performs several engine runs,
        e.g. the ``kv_bits="auto"`` level enumeration."""
        return PlannerStats(
            candidates_total=self.candidates_total + other.candidates_total,
            unique_candidates=self.unique_candidates + other.unique_candidates,
            dedup_skipped=self.dedup_skipped + other.dedup_skipped,
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            pruned=self.pruned + other.pruned,
            solved=self.solved + other.solved,
            infeasible=self.infeasible + other.infeasible,
            bound_seconds=self.bound_seconds + other.bound_seconds,
            solve_wall_seconds=self.solve_wall_seconds + other.solve_wall_seconds,
            solve_cpu_seconds=self.solve_cpu_seconds + other.solve_cpu_seconds,
            n_jobs=max(self.n_jobs, other.n_jobs),
            total_seconds=self.total_seconds + other.total_seconds,
        )

    def row(self) -> dict:
        """Flat dict for result tables / JSON."""
        return {
            "candidates": self.candidates_total,
            "unique": self.unique_candidates,
            "dedup_skipped": self.dedup_skipped,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "pruned": self.pruned,
            "solved": self.solved,
            "infeasible": self.infeasible,
            "bound_s": round(self.bound_seconds, 3),
            "solve_wall_s": round(self.solve_wall_seconds, 3),
            "solve_cpu_s": round(self.solve_cpu_seconds, 3),
            "n_jobs": self.n_jobs,
            "total_s": round(self.total_seconds, 3),
        }

    def describe(self) -> str:
        """One-line summary for the CLI."""
        return (
            f"search: {self.candidates_total} candidates "
            f"({self.unique_candidates} unique, {self.dedup_skipped} dedup), "
            f"{self.solved} solved, {self.pruned} pruned, "
            f"cache {self.cache_hits}/{self.cache_hits + self.cache_misses} hits, "
            f"jobs={self.n_jobs}, {self.total_seconds:.1f}s"
        )


@dataclass
class _Unique:
    """One equivalence class of byte-identical candidate ILPs."""

    key: tuple
    index: int  # legacy enumeration index of the representative
    ordering: tuple[Device, ...]
    mb_p: int
    mb_d: int
    ilp: BitAssignmentILP
    members: list[tuple[int, tuple[Device, ...]]]
    problem: AssembledILP | None = None
    bound: float = -np.inf
    solution: ILPSolution | None = None


@dataclass
class _Outcome:
    """Evaluated representative: status + objective decomposition."""

    status: str
    objective: float = np.inf
    latency: float = np.inf
    quality: float = np.inf
    predicted: PipelineResult | None = None
    plan: object = None


def _solve_worker(payload: tuple[int, AssembledILP]) -> tuple[int, ILPSolution, float]:
    """Worker-process entry: solve one assembled MILP.

    Returns the unique-candidate id, the solution, and the worker's CPU
    seconds for the solve.
    """
    uid, prob = payload
    t0 = time.process_time()
    sol = solve_assembled(prob)
    return uid, sol, time.process_time() - t0


class SearchEngine:
    """Runs Algorithm 1's candidate search for one
    :class:`~repro.core.optimizer.LLMPQOptimizer`."""

    def __init__(self, optimizer: "LLMPQOptimizer") -> None:
        self.opt = optimizer
        self.cfg = optimizer.cfg
        self.cluster = optimizer.cluster
        self.workload = optimizer.workload
        self.config = optimizer.config
        self._incumbent = np.inf
        self._outcomes: dict[int, _Outcome] = {}
        self._milp_count = 0
        self._solve_cpu = 0.0

    # ------------------------------------------------------------------
    def _enumerate(
        self, orderings: Sequence[tuple[Device, ...]]
    ) -> list[tuple[int, tuple[Device, ...], int, int]]:
        """The legacy candidate grid, with its enumeration index."""
        from .optimizer import _microbatch_pairs

        out = []
        idx = 0
        for ordering in orderings:
            pairs = _microbatch_pairs(self.workload, len(ordering), self.config)
            for mb_p, mb_d in pairs:
                out.append((idx, tuple(ordering), mb_p, mb_d))
                idx += 1
        return out

    def _make_ilp(
        self, ordering: Sequence[Device], mb_p: int, mb_d: int
    ) -> BitAssignmentILP:
        return BitAssignmentILP(
            cfg=self.cfg,
            workload=self.workload,
            devices=list(ordering),
            latency_model=self.opt.latency_model,
            indicator=self.opt.grouped_indicator,
            prefill_microbatch=mb_p,
            decode_microbatch=mb_d,
            bits=self.config.bits,
            group_size=self.config.group_size,
            theta=self.config.theta,
            kv_bits=self.config.kv_bits,
            time_limit=self.config.ilp_time_limit,
            prediction_cache=self.opt.prediction_cache,
        )

    def _settle(self, u: _Unique, sol: ILPSolution) -> None:
        """Record a solved representative; tighten the incumbent."""
        u.solution = sol
        if not sol.feasible:
            self._outcomes[u.index] = _Outcome("infeasible")
            return
        plan = self.opt.plan_from_solution(u.ordering, sol, u.ilp, u.mb_p, u.mb_d)
        pred = simulate_pipeline(
            plan, self.cluster, latency_model=self.opt.latency_model
        )
        if not pred.feasible:
            self._outcomes[u.index] = _Outcome(
                "oom", quality=sol.quality_term, predicted=pred, plan=plan
            )
            return
        obj = pred.total_latency + self.config.theta * sol.quality_term
        self._outcomes[u.index] = _Outcome(
            "optimal", obj, pred.total_latency, sol.quality_term, pred, plan
        )
        if obj < self._incumbent:
            self._incumbent = obj

    def _triage(self, u: _Unique) -> str | None:
        """Cheap pre-solve verdict: ``"infeasible"``, ``"pruned"``, or
        ``None`` when a MILP solve is required."""
        if u.problem is None:
            return "infeasible"
        if np.isposinf(u.bound):  # LP relaxation proved infeasibility
            return "infeasible"
        if self.config.prune and u.bound > self._incumbent:
            return "pruned"
        return None

    # ------------------------------------------------------------------
    def run(self) -> "PlannerResult":
        """Full search: dedup -> bound -> best-first solve with pruning."""
        from .optimizer import CandidateRecord, PlannerResult

        t_start = time.perf_counter()
        cache = self.opt.prediction_cache
        hits0, misses0 = cache.hits, cache.misses
        self._incumbent = np.inf
        self._outcomes = {}
        self._milp_count = 0
        self._solve_cpu = 0.0

        candidates = self._enumerate(self.opt.orderings())

        # -------- dedup into equivalence classes --------
        uniques: list[_Unique] = []
        by_key: dict[tuple, _Unique] = {}
        dedup_skipped = 0
        for idx, ordering, mb_p, mb_d in candidates:
            key = (tuple(d.type_name for d in ordering), mb_p, mb_d)
            u = by_key.get(key) if self.config.dedup else None
            if u is None:
                u = _Unique(
                    key=key, index=idx, ordering=ordering, mb_p=mb_p, mb_d=mb_d,
                    ilp=self._make_ilp(ordering, mb_p, mb_d),
                    members=[(idx, ordering)],
                )
                if self.config.dedup:
                    by_key[key] = u
                uniques.append(u)
            else:
                u.members.append((idx, ordering))
                dedup_skipped += 1

        # -------- assemble + admissible lower bounds --------
        t_bound = time.perf_counter()
        for u in uniques:
            u.problem = u.ilp.assemble()
            if u.problem is not None and self.config.prune:
                u.bound = lp_lower_bound(u.problem)
        bound_seconds = time.perf_counter() - t_bound

        # -------- best-first solve with incumbent pruning --------
        order = sorted(uniques, key=lambda u: (u.bound, u.index))
        t_solve = time.perf_counter()
        if self.config.n_jobs <= 1 or len(order) <= 1:
            for u in order:
                verdict = self._triage(u)
                if verdict is not None:
                    self._outcomes[u.index] = _Outcome(verdict)
                    continue
                t0 = time.process_time()
                sol = solve_assembled(u.problem)
                self._solve_cpu += time.process_time() - t0
                self._milp_count += 1
                self._settle(u, sol)
        else:
            self._solve_parallel(order)
        solve_wall = time.perf_counter() - t_solve

        # -------- fan results back out to every candidate --------
        records: list[CandidateRecord | None] = [None] * len(candidates)
        best_obj = np.inf
        best_index = len(candidates)
        best_plan = None
        best_pred: PipelineResult | None = None
        for u in uniques:
            rep = self._outcomes[u.index]
            for idx, ordering in u.members:
                out = rep
                if rep.status == "optimal" and idx != u.index:
                    # same ILP solution, but concrete devices (and thus
                    # link topology) may differ: re-materialize + re-simulate
                    plan = self.opt.plan_from_solution(
                        ordering, u.solution, u.ilp, u.mb_p, u.mb_d
                    )
                    pred = simulate_pipeline(
                        plan, self.cluster, latency_model=self.opt.latency_model
                    )
                    if not pred.feasible:
                        out = _Outcome(
                            "oom", quality=u.solution.quality_term,
                            predicted=pred, plan=plan,
                        )
                    else:
                        lat_v = pred.total_latency
                        out = _Outcome(
                            "optimal",
                            lat_v + self.config.theta * u.solution.quality_term,
                            lat_v, u.solution.quality_term, pred, plan,
                        )
                records[idx] = CandidateRecord(
                    ordering=tuple(d.type_name for d in ordering),
                    prefill_microbatch=u.mb_p,
                    decode_microbatch=u.mb_d,
                    status=out.status,
                    objective=out.objective,
                    latency=out.latency,
                    quality=out.quality,
                    solve_seconds=(
                        u.solution.solve_seconds
                        if (u.solution is not None and idx == u.index)
                        else 0.0
                    ),
                )
                if out.status == "optimal" and (
                    out.objective < best_obj
                    or (out.objective == best_obj and idx < best_index)
                ):
                    best_obj, best_index = out.objective, idx
                    best_plan, best_pred = out.plan, out.predicted

        total = time.perf_counter() - t_start
        statuses = [self._outcomes[u.index].status for u in uniques]
        stats = PlannerStats(
            candidates_total=len(candidates),
            unique_candidates=len(uniques),
            dedup_skipped=dedup_skipped,
            cache_hits=cache.hits - hits0,
            cache_misses=cache.misses - misses0,
            pruned=statuses.count("pruned"),
            solved=self._milp_count,
            infeasible=statuses.count("infeasible"),
            bound_seconds=bound_seconds,
            solve_wall_seconds=solve_wall,
            solve_cpu_seconds=self._solve_cpu,
            n_jobs=self.config.n_jobs,
            total_seconds=total,
        )
        return PlannerResult(
            plan=best_plan,
            objective=best_obj if best_plan is not None else np.inf,
            predicted=best_pred,
            candidates=tuple(records),
            total_seconds=total,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _solve_parallel(self, order: list[_Unique]) -> None:
        """Dispatch MILP solves to worker processes, re-checking the prune
        bound against the live incumbent at submit time."""
        import multiprocessing as mp

        queue = list(order)
        by_uid = {id(u): u for u in queue}
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context()
        with ProcessPoolExecutor(
            max_workers=self.config.n_jobs, mp_context=ctx
        ) as pool:
            in_flight: dict = {}

            def submit_next() -> bool:
                while queue:
                    u = queue.pop(0)
                    verdict = self._triage(u)
                    if verdict is not None:
                        self._outcomes[u.index] = _Outcome(verdict)
                        continue
                    fut = pool.submit(_solve_worker, (id(u), u.problem))
                    in_flight[fut] = u
                    return True
                return False

            for _ in range(self.config.n_jobs):
                if not submit_next():
                    break
            while in_flight:
                done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for fut in done:
                    u = in_flight.pop(fut)
                    uid, sol, cpu = fut.result()
                    assert by_uid[uid] is u
                    self._solve_cpu += cpu
                    self._milp_count += 1
                    self._settle(u, sol)
                for _ in range(len(done)):
                    if not submit_next():
                        break
