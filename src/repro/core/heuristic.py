"""Optimization #3: the bitwidth-transfer heuristic (Algorithm 2).

The exact ILP scales poorly on big clusters, so the paper seeds a greedy
search from **adabits** — the reduced ILP that drops the latency objective
and picks the best-quality bitwidths that merely *fit* in memory — and
then iteratively applies *transformations* that trade precision and layer
placement between the straggler stage and the rest:

* ``move``   — shift a boundary layer off the straggler onto a neighbour
  with spare memory (fewer layers => faster straggler);
* ``downgrade`` — drop one straggler layer to the next lower bitwidth
  (faster decode on the straggler, frees memory, costs quality);
* ``upgrade``   — raise one layer on a non-straggler with spare memory to
  the next higher bitwidth (better quality at no bottleneck cost).

Each candidate transformation is scored with the cost models
(``latency + theta * sum omega``); the best improving move is applied
until none improves or ``max_iters`` is reached.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..hardware.cluster import Device
from ..sim.pipeline import simulate_pipeline
from .optimizer import LLMPQOptimizer, PlannerResult, CandidateRecord
from .plan import ExecutionPlan, StagePlan

__all__ = ["adabits_plan", "bitwidth_transfer", "heuristic_optimize"]


def adabits_plan(
    optimizer: LLMPQOptimizer,
    ordering: Sequence[Device] | None = None,
    *,
    mb_p: int | None = None,
    mb_d: int | None = None,
) -> ExecutionPlan | None:
    """The quality-only seed: solve the ILP with the latency term removed.

    This is also the paper's "pure adaptive quantization" baseline of
    Sec. 6.9 (Fig. 9) when used as a final plan.
    """
    ordering = list(ordering or optimizer.cluster.devices)
    b = optimizer.workload.global_batch
    mb_p = mb_p or max(1, b // len(ordering))
    mb_d = mb_d or max(1, b // len(ordering))
    sol, ilp = optimizer._solve_candidate(ordering, mb_p, mb_d, include_latency=False)
    if not sol.feasible:
        return None
    return optimizer.plan_from_solution(ordering, sol, ilp, mb_p, mb_d)


def _objective(optimizer: LLMPQOptimizer, plan: ExecutionPlan) -> float:
    pred = simulate_pipeline(plan, optimizer.cluster, latency_model=optimizer.latency_model)
    if not pred.feasible:
        return float("inf")
    quality = _plan_quality(optimizer, plan)
    return pred.total_latency + optimizer.config.theta * quality


def _plan_quality(optimizer: LLMPQOptimizer, plan: ExecutionPlan) -> float:
    ind = optimizer.indicator
    return float(
        sum(ind.lookup(i, b) for i, b in enumerate(plan.layer_bits))
    )


def _with_stages(plan: ExecutionPlan, stages: list[StagePlan]) -> ExecutionPlan | None:
    stages = [s for s in stages if s.layer_bits]
    if not stages:
        return None
    return ExecutionPlan(
        model_name=plan.model_name,
        stages=tuple(stages),
        prefill_microbatch=plan.prefill_microbatch,
        decode_microbatch=plan.decode_microbatch,
        workload=plan.workload,
        meta=dict(plan.meta),
    )


def _layer_offsets(plan: ExecutionPlan) -> list[int]:
    """Global index of each stage's first layer."""
    offsets, acc = [], 0
    for s in plan.stages:
        offsets.append(acc)
        acc += s.num_layers
    return offsets


def _neighbors(
    optimizer: LLMPQOptimizer,
    plan: ExecutionPlan,
    straggler: int,
) -> list[ExecutionPlan]:
    """Single-transformation variants of ``plan`` (the rule set C).

    Moves are *compound*: a boundary layer shifted off the straggler may
    be simultaneously requantized to any candidate bitwidth so it can fit
    the receiving device — this is the paper's "(4, 8, 2)"-style rule
    (e.g. one 8-bit pioneer layer replaced by two 4-bit straggler
    layers), which plain moves cannot express when memory is tight.
    Bit changes pick layers by indicator sensitivity: downgrades take the
    least-sensitive layer of the straggler, upgrades the most-sensitive
    quantized layer elsewhere.
    """
    out: list[ExecutionPlan] = []
    stages = list(plan.stages)
    s = stages[straggler]
    sorted_bits = sorted(optimizer.config.bits)
    ind = optimizer.indicator
    offsets = _layer_offsets(plan)

    # compound chain move: shed one layer of load from the straggler to
    # *any* target stage by shifting every boundary in between (layers
    # bubble through intermediate stages, contiguity preserved).  The
    # layer landing on the target may be requantized to any bitwidth —
    # the paper's "(4, 8, 2)"-style precision-for-placement trade.
    if s.num_layers > 1:
        for target in range(len(stages)):
            if target == straggler:
                continue
            for new_b in sorted_bits:
                new_stages = [list(st.layer_bits) for st in stages]
                if target < straggler:
                    # each stage k in (target, straggler] passes its first
                    # layer to stage k-1's tail
                    for k in range(straggler, target, -1):
                        moved = new_stages[k].pop(0)
                        if k - 1 == target:
                            moved = new_b
                        new_stages[k - 1].append(moved)
                else:
                    for k in range(straggler, target):
                        moved = new_stages[k].pop()
                        if k + 1 == target:
                            moved = new_b
                        new_stages[k + 1].insert(0, moved)
                # variant 0: plain chain move; variants 1-2: the target
                # additionally downgrades its least-sensitive high-bit
                # layers one step to make room (the "(4, 8, 2)" rule —
                # trade one high-precision pioneer layer for extra
                # straggler layers when the target is memory-full)
                for extra_downgrades in (0, 1, 2):
                    staged = [list(b) for b in new_stages]
                    tgt_bits = staged[target]
                    ok = True
                    for _ in range(extra_downgrades):
                        cands = [
                            (li, bb) for li, bb in enumerate(tgt_bits)
                            if any(x < bb for x in sorted_bits)
                        ]
                        if not cands:
                            ok = False
                            break
                        li, bb = max(cands, key=lambda t: t[1])
                        tgt_bits[li] = max(x for x in sorted_bits if x < bb)
                    if not ok:
                        continue
                    rebuilt = [
                        StagePlan(st.device, tuple(bits), kv_bits=st.kv_bits)
                        for st, bits in zip(stages, staged)
                    ]
                    cand = _with_stages(plan, rebuilt)
                    if cand is not None:
                        out.append(cand)

    # downgrade the straggler layer whose quality penalty is smallest
    down_cands = []
    for li, b in enumerate(s.layer_bits):
        lower = [x for x in sorted_bits if x < b]
        if not lower:
            continue
        gi = offsets[straggler] + li
        penalty = ind.lookup(gi, lower[-1]) - ind.lookup(gi, b)
        down_cands.append((penalty, li, lower[-1]))
    if down_cands:
        _, li, new_b = min(down_cands)
        new_bits = list(s.layer_bits)
        new_bits[li] = new_b
        new_stages = list(stages)
        new_stages[straggler] = StagePlan(s.device, tuple(new_bits), kv_bits=s.kv_bits)
        cand = _with_stages(plan, new_stages)
        if cand is not None:
            out.append(cand)

    # upgrade a straggler layer: on devices with slow low-precision
    # kernels (e.g. P100) *raising* the bitwidth is the speedup
    up_straggler = []
    for li, b in enumerate(s.layer_bits):
        higher = [x for x in sorted_bits if x > b]
        if not higher:
            continue
        gi = offsets[straggler] + li
        gain = ind.lookup(gi, b) - ind.lookup(gi, higher[0])
        up_straggler.append((-gain, li, higher[0]))
    if up_straggler:
        _, li, new_b = min(up_straggler)
        new_bits = list(s.layer_bits)
        new_bits[li] = new_b
        new_stages = list(stages)
        new_stages[straggler] = StagePlan(s.device, tuple(new_bits), kv_bits=s.kv_bits)
        cand = _with_stages(plan, new_stages)
        if cand is not None:
            out.append(cand)

    # upgrade the most quality-starved layer on each non-straggler stage
    for j, st in enumerate(stages):
        if j == straggler:
            continue
        up_cands = []
        for li, b in enumerate(st.layer_bits):
            higher = [x for x in sorted_bits if x > b]
            if not higher:
                continue
            gi = offsets[j] + li
            gain = ind.lookup(gi, b) - ind.lookup(gi, higher[0])
            up_cands.append((-gain, li, higher[0]))
        if not up_cands:
            continue
        _, li, new_b = min(up_cands)
        new_bits = list(st.layer_bits)
        new_bits[li] = new_b
        new_stages = list(stages)
        new_stages[j] = StagePlan(st.device, tuple(new_bits), kv_bits=st.kv_bits)
        cand = _with_stages(plan, new_stages)
        if cand is not None:
            out.append(cand)
    return out


def bitwidth_transfer(
    optimizer: LLMPQOptimizer,
    seed_plan: ExecutionPlan,
    *,
    max_iters: int = 64,
) -> ExecutionPlan:
    """Greedy best-improvement search from ``seed_plan`` (Algorithm 2)."""
    best = seed_plan
    best_obj = _objective(optimizer, best)
    bits_menu = optimizer.config.bits
    for _ in range(max_iters):
        pred = simulate_pipeline(
            best, optimizer.cluster, latency_model=optimizer.latency_model
        )
        if not pred.feasible:
            # seed infeasible: try shedding memory via downgrades anywhere
            straggler = pred.oom_stages[0]
        else:
            busy = [r.prefill_time + r.decode_time_last for r in pred.stage_reports]
            straggler = int(np.argmax(busy))
        improved = False
        for cand in _neighbors(optimizer, best, straggler):
            obj = _objective(optimizer, cand)
            if obj < best_obj - 1e-9:
                best, best_obj = cand, obj
                improved = True
        if not improved:
            break
    del bits_menu
    return best


def _retune_microbatches(
    optimizer: LLMPQOptimizer, plan: ExecutionPlan
) -> ExecutionPlan:
    """Re-enumerate (prefill, decode) micro-batch pairs on a fixed
    partition/bit structure (Optimization #1 applied post-transfer)."""
    from .optimizer import _microbatch_pairs

    best, best_obj = plan, _objective(optimizer, plan)
    for mb_p, mb_d in _microbatch_pairs(
        optimizer.workload, plan.num_stages, optimizer.config
    ):
        cand = ExecutionPlan(
            model_name=plan.model_name,
            stages=plan.stages,
            prefill_microbatch=mb_p,
            decode_microbatch=mb_d,
            workload=plan.workload,
            meta=dict(plan.meta),
        )
        obj = _objective(optimizer, cand)
        if obj < best_obj - 1e-9:
            best, best_obj = cand, obj
    return best


def heuristic_optimize(optimizer: LLMPQOptimizer) -> PlannerResult:
    """Drop-in replacement for :meth:`LLMPQOptimizer.optimize` that uses
    adabits + bitwidth transfer instead of the exact ILP (Table 8's
    "Heuristic" row)."""
    t0 = time.perf_counter()
    records: list[CandidateRecord] = []
    best_plan: ExecutionPlan | None = None
    best_obj = np.inf

    for ordering in optimizer.orderings():
        seed = adabits_plan(optimizer, ordering)
        type_seq = tuple(d.type_name for d in ordering)
        if seed is None:
            records.append(
                CandidateRecord(
                    ordering=type_seq, prefill_microbatch=0, decode_microbatch=0,
                    status="infeasible", objective=np.inf, latency=np.inf,
                    quality=np.inf, solve_seconds=0.0,
                )
            )
            continue
        t1 = time.perf_counter()
        # alternate transfer and micro-batch retuning: retuning changes
        # workspace sizes, which unlocks transfers that previously OOMed
        plan = seed
        for _ in range(3):
            before = _objective(optimizer, plan)
            plan = bitwidth_transfer(optimizer, plan)
            plan = _retune_microbatches(optimizer, plan)
            if _objective(optimizer, plan) >= before - 1e-9:
                break
        obj = _objective(optimizer, plan)
        records.append(
            CandidateRecord(
                ordering=type_seq,
                prefill_microbatch=plan.prefill_microbatch,
                decode_microbatch=plan.decode_microbatch,
                status="heuristic", objective=obj,
                latency=obj - optimizer.config.theta * _plan_quality(optimizer, plan),
                quality=_plan_quality(optimizer, plan),
                solve_seconds=time.perf_counter() - t1,
            )
        )
        if obj < best_obj:
            best_obj, best_plan = obj, plan
    pred = None
    if best_plan is not None:
        pred = simulate_pipeline(
            best_plan, optimizer.cluster, latency_model=optimizer.latency_model
        )
    return PlannerResult(
        plan=best_plan,
        objective=best_obj,
        predicted=pred,
        candidates=tuple(records),
        total_seconds=time.perf_counter() - t0,
    )
