"""Core planner: plans, ILP, Algorithm 1/2, baselines, public API."""

from .plan import ExecutionPlan, StagePlan
from .ilp import AssembledILP, BitAssignmentILP, ILPSolution, lp_lower_bound, solve_assembled
from .optimizer import CandidateRecord, LLMPQOptimizer, PlannerConfig, PlannerResult
from .search import PlannerStats, SearchEngine
from .heuristic import adabits_plan, bitwidth_transfer, heuristic_optimize
from .baselines import BaselineOutcome, flexgen_run, pipeedge_plan, uniform_plan
from .api import (
    ServingReport,
    compare_schemes,
    evaluate_plan,
    plan_llmpq,
    replan_after_failure,
)
from .validate import ValidationIssue, ValidationReport, validate_plan
from .tensor_parallel import (
    TPPlanResult,
    enumerate_tp_clusters,
    fuse_tp_group,
    plan_with_tensor_parallel,
    tp_efficiency,
)

__all__ = [
    "ExecutionPlan",
    "StagePlan",
    "AssembledILP",
    "BitAssignmentILP",
    "ILPSolution",
    "lp_lower_bound",
    "solve_assembled",
    "LLMPQOptimizer",
    "PlannerConfig",
    "PlannerResult",
    "CandidateRecord",
    "PlannerStats",
    "SearchEngine",
    "adabits_plan",
    "bitwidth_transfer",
    "heuristic_optimize",
    "BaselineOutcome",
    "pipeedge_plan",
    "uniform_plan",
    "flexgen_run",
    "ServingReport",
    "compare_schemes",
    "evaluate_plan",
    "plan_llmpq",
    "replan_after_failure",
    "ValidationIssue",
    "ValidationReport",
    "validate_plan",
    "TPPlanResult",
    "tp_efficiency",
    "fuse_tp_group",
    "enumerate_tp_clusters",
    "plan_with_tensor_parallel",
]
