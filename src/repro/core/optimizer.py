"""Algorithm 1: best inference execution plan.

Enumerates the pruned joint search space —

* **device orderings** (Sec. 4.3's ``GetDeviceOrder``): by default the
  permutations of contiguous same-type *blocks* (same-type devices are
  interchangeable and keeping them adjacent preserves fast intra-node
  links); ``ordering_mode="full"`` explores every distinct type sequence;
* **(prefill, decode) micro-batch pairs** (Optimization #1): prefill
  micro-batches are enumerated over powers of two in ``[1, xi]``; decode
  micro-batches evenly split the global batch across stages, because
  decode is memory-bound and bigger micro-batches amortize weight
  streaming while prefill prefers small ones to shrink pipeline bubbles —

and solves the Sec.-4.3 ILP for each candidate, keeping the plan with the
best ``latency + theta * quality`` objective as evaluated by the cost
models.

Candidate evaluation runs on the :mod:`repro.core.search` engine:
byte-identical candidates are deduplicated, cost-model queries are
memoized in a shared :class:`~repro.cost.predictions.PredictionCache`,
candidates are solved best-first under LP-relaxation bounds with
incumbent pruning, and independent MILPs can solve in parallel worker
processes (``PlannerConfig.n_jobs``).  The pre-engine serial loop is
retained as :meth:`LLMPQOptimizer.optimize_legacy` — the equality oracle
for tests and the baseline for the planner-speed benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cost.latency import LatencyModel
from ..cost.predictions import PredictionCache
from ..cost.profiler import build_latency_model
from ..hardware.cluster import Cluster, Device
from ..models.registry import get_model
from ..quant.indicator import (
    IndicatorTable,
    synthetic_indicator,
    synthetic_kv_indicator,
)
from ..sim.pipeline import PipelineResult, simulate_pipeline
from ..workload.spec import Workload
from .ilp import BitAssignmentILP, ILPSolution
from .plan import KV_BITS_CHOICES, ExecutionPlan, StagePlan
from .search import PlannerStats

__all__ = [
    "PlannerConfig",
    "CandidateRecord",
    "PlannerResult",
    "PlannerStats",
    "LLMPQOptimizer",
]


@dataclass(frozen=True)
class PlannerConfig:
    """Knobs of Algorithm 1."""

    bits: tuple[int, ...] = (3, 4, 8, 16)
    theta: float = 1.0
    group_size: int = 1
    ordering_mode: str = "blocks"  # "blocks" | "full"
    max_orderings: int = 24
    prefill_mb_cap: int | None = None  # xi; default: global_batch
    decode_mb_candidates: tuple[int, ...] | None = None
    ilp_time_limit: float = 60.0
    #: KV-cache bitwidth: 16 (fp16 baseline), 8 or 4 (uniform quantized
    #: KV priced into the ILP's memory *and* time tables), or ``"auto"``
    #: — enumerate the uniform levels, pick the best under
    #: ``objective + theta * kv_error``, then refine per stage
    kv_bits: int | str = 16
    #: search-engine knobs: worker processes for candidate MILPs, and the
    #: dedup / bound-and-prune switches (all result-preserving)
    n_jobs: int = 1
    dedup: bool = True
    prune: bool = True


@dataclass(frozen=True)
class CandidateRecord:
    """One (ordering, micro-batch pair) candidate's outcome."""

    ordering: tuple[str, ...]
    prefill_microbatch: int
    decode_microbatch: int
    status: str
    objective: float
    latency: float
    quality: float
    solve_seconds: float


@dataclass(frozen=True)
class PlannerResult:
    """Best plan plus the full exploration record."""

    plan: ExecutionPlan | None
    objective: float
    predicted: PipelineResult | None
    candidates: tuple[CandidateRecord, ...]
    total_seconds: float
    stats: PlannerStats | None = None

    @property
    def feasible(self) -> bool:
        """Whether any candidate produced a servable plan."""
        return self.plan is not None


def _block_orderings(cluster: Cluster) -> list[tuple[Device, ...]]:
    """Permutations of same-type device blocks."""
    import itertools

    by_type: dict[str, list[Device]] = {}
    for d in cluster.devices:
        by_type.setdefault(d.type_name, []).append(d)
    out = []
    for perm in itertools.permutations(sorted(by_type)):
        ordering: list[Device] = []
        for t in perm:
            ordering.extend(by_type[t])
        out.append(tuple(ordering))
    return out


def _microbatch_pairs(
    workload: Workload, n_devices: int, cfg: PlannerConfig
) -> list[tuple[int, int]]:
    b = workload.global_batch
    xi = cfg.prefill_mb_cap or b
    prefill = [m for m in (1, 2, 4, 8, 16, 32, 64) if m <= min(b, xi)]
    if cfg.decode_mb_candidates is not None:
        decode = [m for m in cfg.decode_mb_candidates if 0 < m <= b]
    else:
        even = max(1, -(-b // n_devices))
        decode = sorted({even, min(2 * even, b), b})
    return [(p, d) for p in prefill for d in decode]


class LLMPQOptimizer:
    """The offline assigner: cost models + indicator + ILP search."""

    def __init__(
        self,
        model_name: str,
        cluster: Cluster,
        workload: Workload,
        *,
        config: PlannerConfig | None = None,
        latency_model: LatencyModel | None = None,
        indicator: IndicatorTable | None = None,
        profile_seed: int = 0,
    ) -> None:
        self.model_name = model_name
        self.cfg = get_model(model_name)
        self.cluster = cluster
        self.workload = workload
        self.config = config or PlannerConfig()
        self.latency_model = latency_model or build_latency_model(
            [d.type_name for d in cluster.devices], self.cfg, seed=profile_seed
        )
        base_indicator = indicator or synthetic_indicator(
            self.cfg, bits=self.config.bits
        )
        self.indicator = base_indicator.normalized()
        # hoisted per-run state shared by every candidate: the grouped
        # omega table (identical for all candidates) and the cost-model
        # prediction memo
        self.grouped_indicator = self.indicator.grouped(self.config.group_size)
        self.prediction_cache = PredictionCache(self.latency_model)
        kv = self.config.kv_bits
        if kv != "auto" and kv not in KV_BITS_CHOICES:
            raise ValueError(
                f"kv_bits must be one of {KV_BITS_CHOICES} or 'auto', got {kv!r}"
            )
        # per-layer KV quantization error, same normalization contract as
        # the weight indicator — the quality term of the kv_bits choice
        self.kv_indicator = synthetic_kv_indicator(self.cfg).normalized()

    # ------------------------------------------------------------------
    def orderings(self) -> list[tuple[Device, ...]]:
        """Candidate pipeline device orderings under the configured mode."""
        if self.config.ordering_mode == "full":
            return list(
                self.cluster.distinct_orderings(limit=self.config.max_orderings)
            )
        if self.config.ordering_mode == "blocks":
            out = _block_orderings(self.cluster)
            return out[: self.config.max_orderings]
        raise ValueError(f"unknown ordering_mode {self.config.ordering_mode!r}")

    def _solve_candidate(
        self, ordering: Sequence[Device], mb_p: int, mb_d: int, *,
        include_latency: bool = True, legacy: bool = False,
    ) -> tuple[ILPSolution, BitAssignmentILP]:
        """Solve one candidate's ILP.

        ``legacy=True`` reproduces the pre-engine behaviour exactly —
        scalar cost-model queries and dict-loop constraint assembly, no
        shared cache — and exists for the equality tests and the
        planner-speed benchmark baseline.
        """
        if legacy:
            ilp = BitAssignmentILP(
                cfg=self.cfg,
                workload=self.workload,
                devices=list(ordering),
                latency_model=self.latency_model,
                indicator=self.indicator.grouped(self.config.group_size),
                prefill_microbatch=mb_p,
                decode_microbatch=mb_d,
                bits=self.config.bits,
                group_size=self.config.group_size,
                theta=self.config.theta,
                include_latency=include_latency,
                kv_bits=int(self.config.kv_bits),
                time_limit=self.config.ilp_time_limit,
            )
            return ilp.solve(legacy=True), ilp
        ilp = BitAssignmentILP(
            cfg=self.cfg,
            workload=self.workload,
            devices=list(ordering),
            latency_model=self.latency_model,
            indicator=self.grouped_indicator,
            prefill_microbatch=mb_p,
            decode_microbatch=mb_d,
            bits=self.config.bits,
            group_size=self.config.group_size,
            theta=self.config.theta,
            include_latency=include_latency,
            kv_bits=int(self.config.kv_bits),
            time_limit=self.config.ilp_time_limit,
            prediction_cache=self.prediction_cache,
        )
        return ilp.solve(), ilp

    def plan_from_solution(
        self,
        ordering: Sequence[Device],
        sol: ILPSolution,
        ilp: BitAssignmentILP,
        mb_p: int,
        mb_d: int,
    ) -> ExecutionPlan:
        """Materialize an ILP solution into an executable plan."""
        dev_per_layer, bits_per_layer = ilp.expand_groups(sol)
        kv = int(self.config.kv_bits)  # "auto" never reaches the ILP layer
        stages = []
        for j, dev in enumerate(ordering):
            bits = tuple(
                b for d, b in zip(dev_per_layer, bits_per_layer) if d == j
            )
            if bits:
                stages.append(
                    StagePlan(device=dev, layer_bits=bits, kv_bits=kv)
                )
        return ExecutionPlan(
            model_name=self.model_name,
            stages=tuple(stages),
            prefill_microbatch=mb_p,
            decode_microbatch=mb_d,
            workload=self.workload,
            meta={
                "theta": self.config.theta,
                "group_size": self.config.group_size,
                "kv_bits": kv,
            },
        )

    # ------------------------------------------------------------------
    def optimize(self) -> PlannerResult:
        """Run the full Algorithm-1 search on the
        :class:`~repro.core.search.SearchEngine` (dedup + memoized cost
        queries + LP-bound pruning + optional parallel solves).

        Returns the same best objective and an equivalent plan as
        :meth:`optimize_legacy`; ``result.stats`` records the work saved.

        With ``kv_bits="auto"`` the search additionally chooses KV-cache
        bitwidths: the uniform levels are enumerated (each its own full
        Algorithm-1 run at that level's prices), ranked by
        ``objective + theta * kv_error``, and the winner refined per
        stage (see :meth:`_refine_stage_kv`).
        """
        from .search import SearchEngine

        if self.config.kv_bits == "auto":
            return self._optimize_auto_kv()
        return SearchEngine(self).run()

    # ------------------------------------------------------------------
    def _kv_penalty(self, plan: ExecutionPlan, levels: Sequence[int]) -> float:
        """Summed per-layer KV-error omega under per-stage KV levels."""
        cols = {b: self.kv_indicator.column(b) for b in KV_BITS_CHOICES}
        total, off = 0.0, 0
        for st, lv in zip(plan.stages, levels):
            total += float(cols[lv][off : off + st.num_layers].sum())
            off += st.num_layers
        return total

    def _plan_with_stage_kv(
        self, plan: ExecutionPlan, levels: Sequence[int]
    ) -> ExecutionPlan:
        """Per-stage KV variant with the stage values made authoritative.

        ``meta["kv_bits"]`` is reset to 16 so the legacy plan-global knob
        cannot re-price a stage that the refinement raised back to fp16.
        """
        import dataclasses

        variant = plan.with_kv_bits(tuple(levels))
        meta = dict(variant.meta)
        meta["kv_bits"] = 16
        return dataclasses.replace(variant, meta=meta)

    def _refine_stage_kv(
        self, res: PlannerResult
    ) -> tuple[ExecutionPlan, PipelineResult, float]:
        """Per-stage KV refinement of a uniform-KV winner.

        Scores every per-stage level assignment (exhaustive for shallow
        pipelines, coordinate descent otherwise) by re-simulating the
        pipeline — memory fits are re-checked at the variant's per-stage
        KV footprint — plus ``theta`` times the KV-error penalty of the
        levels.  Returns the best variant, its simulation, and its
        objective on the same ``latency + theta * weight_quality`` scale
        as every other :class:`PlannerResult`.
        """
        import itertools

        plan, theta = res.plan, self.config.theta
        n = plan.num_stages
        quality_part = res.objective - res.predicted.total_latency

        def score(levels: tuple[int, ...]):
            variant = self._plan_with_stage_kv(plan, levels)
            pred = simulate_pipeline(
                variant, self.cluster, latency_model=self.latency_model
            )
            if not pred.feasible:
                return np.inf, None, None
            s = (
                pred.total_latency
                + quality_part
                + theta * self._kv_penalty(plan, levels)
            )
            return s, variant, pred

        best_levels = plan.kv_bits_per_stage
        best_s, best_plan, best_pred = score(best_levels)
        if n <= 4:
            for levels in itertools.product(KV_BITS_CHOICES, repeat=n):
                if levels == best_levels:
                    continue
                s, variant, pred = score(levels)
                if s < best_s:
                    best_s, best_plan, best_pred = s, variant, pred
                    best_levels = levels
        else:
            improved = True
            while improved:
                improved = False
                for j in range(n):
                    for lv in KV_BITS_CHOICES:
                        if lv == best_levels[j]:
                            continue
                        cand = best_levels[:j] + (lv,) + best_levels[j + 1 :]
                        s, variant, pred = score(cand)
                        if s < best_s:
                            best_s, best_plan, best_pred = s, variant, pred
                            best_levels = cand
                            improved = True
        objective = quality_part + best_pred.total_latency
        return best_plan, best_pred, objective

    def _optimize_auto_kv(self) -> PlannerResult:
        """KV-bitwidth auto-search wrapped around the Algorithm-1 engine.

        KV levels are *not* extra ILP variables — that would make the
        latency terms bilinear.  Instead each uniform level runs the
        engine at that level's prices (time tables and memory both see
        ``kv_bits``), the best level wins under the KV-error-penalized
        objective, and a per-stage refinement pass then mixes levels
        where the simulator + memory model justify it.
        """
        import dataclasses

        from .search import SearchEngine

        t0 = time.perf_counter()
        base_cfg = self.config
        records: list[CandidateRecord] = []
        stats: PlannerStats | None = None
        best: PlannerResult | None = None
        best_score = np.inf
        for level in sorted(KV_BITS_CHOICES, reverse=True):
            self.config = dataclasses.replace(base_cfg, kv_bits=level)
            try:
                res = SearchEngine(self).run()
            finally:
                self.config = base_cfg
            records.extend(res.candidates)
            if res.stats is not None:
                stats = res.stats if stats is None else stats.merged(res.stats)
            if not res.feasible:
                continue
            uniform = (level,) * res.plan.num_stages
            score = res.objective + base_cfg.theta * self._kv_penalty(
                res.plan, uniform
            )
            if score < best_score:
                best_score, best = score, res
        if best is None:
            return PlannerResult(
                plan=None,
                objective=np.inf,
                predicted=None,
                candidates=tuple(records),
                total_seconds=time.perf_counter() - t0,
                stats=stats,
            )
        plan, pred, objective = self._refine_stage_kv(best)
        return PlannerResult(
            plan=plan,
            objective=objective,
            predicted=pred,
            candidates=tuple(records),
            total_seconds=time.perf_counter() - t0,
            stats=stats,
        )

    def optimize_legacy(self) -> PlannerResult:
        """The pre-engine serial search: one scalar-assembled MILP per
        candidate, no dedup, no cache, no pruning.

        Kept as the equality oracle for the engine's
        asserted-identical-result guarantee and as the baseline of
        ``benchmarks/test_ext_planner_speed.py``.
        """
        t0 = time.perf_counter()
        records: list[CandidateRecord] = []
        best_plan: ExecutionPlan | None = None
        best_obj = np.inf
        best_pred: PipelineResult | None = None

        orderings = self.orderings()
        for ordering in orderings:
            pairs = _microbatch_pairs(self.workload, len(ordering), self.config)
            for mb_p, mb_d in pairs:
                sol, ilp = self._solve_candidate(ordering, mb_p, mb_d, legacy=True)
                type_seq = tuple(d.type_name for d in ordering)
                if not sol.feasible:
                    records.append(
                        CandidateRecord(
                            ordering=type_seq, prefill_microbatch=mb_p,
                            decode_microbatch=mb_d, status=sol.status,
                            objective=np.inf, latency=np.inf, quality=np.inf,
                            solve_seconds=sol.solve_seconds,
                        )
                    )
                    continue
                plan = self.plan_from_solution(ordering, sol, ilp, mb_p, mb_d)
                pred = simulate_pipeline(
                    plan, self.cluster, latency_model=self.latency_model
                )
                if not pred.feasible:
                    status = "oom"
                    obj = lat = np.inf
                else:
                    status = "optimal"
                    lat = pred.total_latency
                    obj = lat + self.config.theta * sol.quality_term
                records.append(
                    CandidateRecord(
                        ordering=type_seq, prefill_microbatch=mb_p,
                        decode_microbatch=mb_d, status=status, objective=obj,
                        latency=lat, quality=sol.quality_term,
                        solve_seconds=sol.solve_seconds,
                    )
                )
                if obj < best_obj:
                    best_obj, best_plan, best_pred = obj, plan, pred
        return PlannerResult(
            plan=best_plan,
            objective=best_obj,
            predicted=best_pred,
            candidates=tuple(records),
            total_seconds=time.perf_counter() - t0,
        )
