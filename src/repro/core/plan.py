"""Execution-plan representation and (de)serialization.

An :class:`ExecutionPlan` is the assigner's output and the runtime's
input: an ordered list of pipeline stages (device + the bitwidth of every
decoder layer it hosts) plus the phase-specific micro-batch sizes, bound
to the workload it was optimized for — mirroring the strategy files that
``llmpq-algo`` writes and ``llmpq-dist`` launches.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from ..hardware.cluster import Device
from ..hardware.gpu import get_gpu
from ..models.registry import get_model
from ..workload.spec import Workload

__all__ = ["StagePlan", "ExecutionPlan", "KV_BITS_CHOICES"]


#: Supported KV-cache bitwidths (QServe-style KV4/KV8 plus fp16 baseline).
KV_BITS_CHOICES = (4, 8, 16)


@dataclass(frozen=True)
class StagePlan:
    """One pipeline stage: a device and its layers' bitwidths (in order).

    ``kv_bits`` is the stage's KV-cache bitwidth — a first-class plan
    variable alongside the weight bitwidths.  16 is the fp16 baseline
    (KV untouched); 8/4 store quantized KV, shrinking both the memory
    footprint (more admission headroom) and the decode memory-bound
    time (smaller KV stream).
    """

    device: Device
    layer_bits: tuple[int, ...]
    kv_bits: int = 16

    def __post_init__(self) -> None:
        if any(b <= 0 for b in self.layer_bits):
            raise ValueError("bitwidths must be positive")
        if self.kv_bits not in KV_BITS_CHOICES:
            raise ValueError(
                f"kv_bits must be one of {KV_BITS_CHOICES}, got {self.kv_bits}"
            )

    @property
    def num_layers(self) -> int:
        """Decoder layers hosted by this stage."""
        return len(self.layer_bits)

    @property
    def bit_counts(self) -> dict[int, int]:
        """Histogram ``bits -> layer count`` of this stage."""
        out: dict[int, int] = {}
        for b in self.layer_bits:
            out[b] = out.get(b, 0) + 1
        return out


@dataclass(frozen=True)
class ExecutionPlan:
    """A complete serving strategy for one model / cluster / workload."""

    model_name: str
    stages: tuple[StagePlan, ...]
    prefill_microbatch: int
    decode_microbatch: int
    workload: Workload
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("plan needs at least one stage")
        if self.prefill_microbatch <= 0 or self.decode_microbatch <= 0:
            raise ValueError("micro-batch sizes must be positive")
        if self.prefill_microbatch > self.workload.global_batch:
            raise ValueError("prefill micro-batch exceeds global batch")
        if self.decode_microbatch > self.workload.global_batch:
            raise ValueError("decode micro-batch exceeds global batch")
        cfg = get_model(self.model_name)
        if self.num_layers != cfg.num_layers:
            raise ValueError(
                f"plan covers {self.num_layers} layers, model has {cfg.num_layers}"
            )

    # ------------------------------------------------------------------
    @property
    def num_stages(self) -> int:
        """Pipeline depth."""
        return len(self.stages)

    @property
    def num_layers(self) -> int:
        """Total decoder layers across all stages."""
        return sum(s.num_layers for s in self.stages)

    @property
    def layer_bits(self) -> tuple[int, ...]:
        """Bits of every model layer, pipeline order."""
        out: list[int] = []
        for s in self.stages:
            out.extend(s.layer_bits)
        return tuple(out)

    @property
    def partition(self) -> tuple[int, ...]:
        """Layers per stage."""
        return tuple(s.num_layers for s in self.stages)

    @property
    def kv_bits_per_stage(self) -> tuple[int, ...]:
        """KV-cache bitwidth of every stage, pipeline order."""
        return tuple(s.kv_bits for s in self.stages)

    def with_kv_bits(self, kv_bits: int | Sequence[int]) -> "ExecutionPlan":
        """Copy of this plan with per-stage KV bitwidths replaced.

        Accepts a single bitwidth (applied to every stage) or one per
        stage.  Everything else — devices, layer bitwidths, micro-batch
        sizes, workload, meta — is preserved.
        """
        if isinstance(kv_bits, int):
            per_stage = (kv_bits,) * self.num_stages
        else:
            per_stage = tuple(int(b) for b in kv_bits)
            if len(per_stage) != self.num_stages:
                raise ValueError(
                    f"need {self.num_stages} kv_bits entries, got {len(per_stage)}"
                )
        stages = tuple(
            StagePlan(device=s.device, layer_bits=s.layer_bits, kv_bits=b)
            for s, b in zip(self.stages, per_stage)
        )
        return ExecutionPlan(
            model_name=self.model_name,
            stages=stages,
            prefill_microbatch=self.prefill_microbatch,
            decode_microbatch=self.decode_microbatch,
            workload=self.workload,
            meta=dict(self.meta),
        )

    def average_bits(self) -> float:
        """Mean weight bitwidth over all layers."""
        bits = self.layer_bits
        return sum(bits) / len(bits)

    def describe(self) -> str:
        """Multi-line human-readable plan summary."""
        rows = []
        for i, s in enumerate(self.stages):
            counts = ", ".join(f"{n}x{b}b" for b, n in sorted(s.bit_counts.items()))
            kv = "" if s.kv_bits == 16 else f" kv{s.kv_bits}"
            rows.append(
                f"  stage {i}: {s.device.type_name:<10} {s.num_layers:>3} layers [{counts}]{kv}"
            )
        head = (
            f"{self.model_name} | {self.num_stages} stages | "
            f"mb_prefill={self.prefill_microbatch} mb_decode={self.decode_microbatch} | "
            f"s={self.workload.prompt_len} n={self.workload.gen_len} b={self.workload.global_batch}"
        )
        return "\n".join([head, *rows])

    # ------------------------------------------------------------------
    # Serialization (the strategy files of Sec. 5's CLI)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready strategy dict (the llmpq-algo output format)."""
        return {
            "model_name": self.model_name,
            "prefill_microbatch": self.prefill_microbatch,
            "decode_microbatch": self.decode_microbatch,
            "workload": {
                "prompt_len": self.workload.prompt_len,
                "gen_len": self.workload.gen_len,
                "global_batch": self.workload.global_batch,
            },
            "stages": [
                {
                    "gpu_type": s.device.type_name,
                    "node_id": s.device.node_id,
                    "local_rank": s.device.local_rank,
                    "layer_bits": list(s.layer_bits),
                    "kv_bits": s.kv_bits,
                }
                for s in self.stages
            ],
            "meta": self.meta,
        }

    def to_json(self, path: str | Path | None = None) -> str:
        """Serialize; optionally write a strategy file at ``path``."""
        text = json.dumps(self.to_dict(), indent=2)
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_dict(cls, d: dict) -> "ExecutionPlan":
        """Inverse of :meth:`to_dict`."""
        stages = tuple(
            StagePlan(
                device=Device(
                    spec=get_gpu(s["gpu_type"]),
                    node_id=int(s["node_id"]),
                    local_rank=int(s["local_rank"]),
                ),
                layer_bits=tuple(int(b) for b in s["layer_bits"]),
                kv_bits=int(s.get("kv_bits", 16)),
            )
            for s in d["stages"]
        )
        w = d["workload"]
        return cls(
            model_name=d["model_name"],
            stages=stages,
            prefill_microbatch=int(d["prefill_microbatch"]),
            decode_microbatch=int(d["decode_microbatch"]),
            workload=Workload(
                prompt_len=int(w["prompt_len"]),
                gen_len=int(w["gen_len"]),
                global_batch=int(w["global_batch"]),
            ),
            meta=dict(d.get("meta", {})),
        )

    @classmethod
    def from_json(cls, src: str | Path) -> "ExecutionPlan":
        """Load a strategy from a JSON string or file path."""
        text = str(src)
        if not text.lstrip().startswith("{"):
            text = Path(src).read_text()
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        model_name: str,
        devices: Sequence[Device],
        workload: Workload,
        *,
        bits: int = 16,
        kv_bits: int = 16,
        prefill_microbatch: int | None = None,
        decode_microbatch: int | None = None,
    ) -> "ExecutionPlan":
        """Even layer split at a single precision (the Uniform baseline)."""
        cfg = get_model(model_name)
        n_dev = len(devices)
        if n_dev == 0:
            raise ValueError("need at least one device")
        base, extra = divmod(cfg.num_layers, n_dev)
        counts = [base + (1 if i < extra else 0) for i in range(n_dev)]
        stages = tuple(
            StagePlan(device=d, layer_bits=(bits,) * c, kv_bits=kv_bits)
            for d, c in zip(devices, counts)
            if c > 0
        )
        mb = max(1, workload.global_batch // max(len(stages), 1))
        return cls(
            model_name=model_name,
            stages=stages,
            prefill_microbatch=prefill_microbatch or mb,
            decode_microbatch=decode_microbatch or mb,
            workload=workload,
        )
