"""Plan validation: pre-flight checks before serving a strategy file.

``llmpq-dist`` accepts strategy JSON from anywhere; these checks catch
the mistakes that would otherwise surface as mid-serving crashes or
silent OOMs — wrong layer count, devices not in the target cluster,
bitwidths the kernels don't support, memory that cannot fit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cost.stagecosts import StageCostModel
from ..hardware.cluster import Cluster
from ..hardware.gpu import SUPPORTED_BITS
from ..models.registry import MODEL_REGISTRY, get_model
from .plan import ExecutionPlan

__all__ = ["ValidationIssue", "ValidationReport", "validate_plan"]


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in a plan."""

    severity: str  #: "error" | "warning"
    code: str
    message: str


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of :func:`validate_plan`."""

    issues: tuple[ValidationIssue, ...]

    @property
    def ok(self) -> bool:
        """No errors (warnings allowed)."""
        return not any(i.severity == "error" for i in self.issues)

    @property
    def errors(self) -> list[ValidationIssue]:
        """Blocking issues."""
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> list[ValidationIssue]:
        """Non-blocking issues."""
        return [i for i in self.issues if i.severity == "warning"]

    def describe(self) -> str:
        """One line per issue, or \"plan OK\"."""
        if not self.issues:
            return "plan OK"
        return "\n".join(f"[{i.severity}] {i.code}: {i.message}" for i in self.issues)


def validate_plan(plan: ExecutionPlan, cluster: Cluster | None = None) -> ValidationReport:
    """Static + memory checks of a strategy against an optional cluster."""
    issues: list[ValidationIssue] = []

    # model known and layer count matched (ExecutionPlan enforces the
    # count at construction, but hand-edited JSON can bypass dataclass
    # invariants only here, so re-check)
    if plan.model_name not in MODEL_REGISTRY:
        issues.append(ValidationIssue("error", "unknown-model", plan.model_name))
        return ValidationReport(tuple(issues))
    cfg = get_model(plan.model_name)
    if plan.num_layers != cfg.num_layers:
        issues.append(
            ValidationIssue(
                "error", "layer-count",
                f"plan has {plan.num_layers} layers, model needs {cfg.num_layers}",
            )
        )

    # bitwidths supported by every stage's device
    for j, stage in enumerate(plan.stages):
        for b in set(stage.layer_bits):
            if b not in SUPPORTED_BITS:
                issues.append(
                    ValidationIssue(
                        "error", "unsupported-bits",
                        f"stage {j} uses {b}-bit, supported: {SUPPORTED_BITS}",
                    )
                )

    # micro-batch divisibility (ragged tails work but waste bubbles)
    b = plan.workload.global_batch
    if b % plan.prefill_microbatch:
        issues.append(
            ValidationIssue(
                "warning", "ragged-prefill",
                f"global batch {b} not divisible by prefill micro-batch "
                f"{plan.prefill_microbatch}",
            )
        )
    if plan.decode_microbatch % plan.prefill_microbatch:
        issues.append(
            ValidationIssue(
                "warning", "regroup-mismatch",
                "decode micro-batch is not a multiple of the prefill "
                "micro-batch; the runtime rounds the decode group down to "
                "whole cache units",
            )
        )

    # cluster membership + memory
    if cluster is not None:
        available = {d.type_name for d in cluster.devices}
        counts: dict[str, int] = {}
        for stage in plan.stages:
            counts[stage.device.type_name] = counts.get(stage.device.type_name, 0) + 1
        for t, n in counts.items():
            have = sum(1 for d in cluster.devices if d.type_name == t)
            if t not in available or n > have:
                issues.append(
                    ValidationIssue(
                        "error", "device-mismatch",
                        f"plan wants {n}x {t}, cluster has {have}",
                    )
                )
        # same Sec.-4.1 memory views the planner and simulators price with
        views = StageCostModel(plan, cfg=cfg).stage_memory_views()
        for j, (stage, mem) in enumerate(zip(plan.stages, views)):
            if not mem.fits(stage.device.spec.memory_bytes):
                issues.append(
                    ValidationIssue(
                        "error", "oom",
                        f"stage {j} needs {mem.total / 2**30:.1f} GiB on "
                        f"{stage.device.type_name}",
                    )
                )
    return ValidationReport(tuple(issues))
