#!/usr/bin/env python3
"""Online serving trade-off study (paper Sec. 7, "Apply to ORCA or vLLM").

The paper's discussion: in online serving, weight precision trades
kernel speed against KV-cache headroom (which caps the concurrent
batch).  This example streams a Poisson request trace at several load
levels against uniform 16/8/4-bit plans on cluster 3 and reports the
admissible batch, throughput and latency percentiles per precision.

Run:  python examples/online_serving_study.py
"""

from repro.bench.tables import format_table
from repro.core.plan import ExecutionPlan
from repro.hardware import paper_cluster
from repro.sim.online import max_admissible_batch, simulate_online
from repro.workload import Workload, sample_poisson_arrivals


def main() -> None:
    cluster = paper_cluster(3)
    w = Workload(prompt_len=512, gen_len=100, global_batch=16)

    rows = []
    for rate in (0.5, 2.0, 6.0):
        trace = sample_poisson_arrivals(rate, 60.0, seed=0, max_prompt=256, max_gen=32)
        for bits in (16, 8, 4):
            plan = ExecutionPlan.uniform("opt-30b", cluster.devices, w, bits=bits)
            cap = max_admissible_batch(plan, prompt_len=256, gen_len=32)
            if cap == 0:
                rows.append({"rate_req_s": rate, "bits": bits, "max_batch": 0,
                             "tput_tok_s": None, "mean_lat_s": None, "p95_lat_s": None})
                continue
            res = simulate_online(plan, cluster, trace, max_batch=min(cap, 64))
            rows.append(
                {
                    "rate_req_s": rate,
                    "bits": bits,
                    "max_batch": cap,
                    "tput_tok_s": round(res.throughput, 1),
                    "mean_lat_s": round(res.mean_latency, 2),
                    "p95_lat_s": round(res.p95_latency, 2),
                }
            )
    print(format_table(rows, title="online serving on cluster 3 (OPT-30b), 60s trace"))
    print(
        "\nlower precision -> more KV headroom -> bigger admissible batches;"
        "\nunder light load FP16's faster prefill wins, under heavy load the"
        "\nquantized plans' larger waves win — the Sec.-7 trade-off."
    )


if __name__ == "__main__":
    main()
