#!/usr/bin/env python3
"""Plan -> execute -> verify: the real pipelined runtime on a tiny model.

Everything in this demo actually runs: the planner produces a
mixed-precision pipeline plan for the tiny NumPy decoder LM, the
thread-pipelined runtime executes it (stage workers with genuinely
bit-packed quantized shards, per-stage KV caches, hybrid micro-batch
regrouping), and the generated tokens are compared against a
single-process reference model to prove the distributed execution is
faithful.

Run:  python examples/tiny_runtime_demo.py
"""

import numpy as np

from repro.core.plan import ExecutionPlan, StagePlan
from repro.hardware import Device, get_gpu
from repro.models import TinyDecoderLM, generate, get_model, make_corpus
from repro.quant import quantize_dequantize
from repro.runtime import PipelineRuntime, simulate_loading
from repro.workload import Workload


def main() -> None:
    cfg = get_model("tiny-8l")
    reference = TinyDecoderLM(cfg, seed=7)
    workload = Workload(prompt_len=16, gen_len=8, global_batch=8)
    prompts = make_corpus(cfg.vocab_size, num_seqs=8, seq_len=16, seed=11).tokens

    # a hand-written 3-stage mixed-precision plan (T4s run INT8, the
    # V100 keeps FP16 — the cluster-3 shape at toy scale)
    plan = ExecutionPlan(
        model_name="tiny-8l",
        stages=(
            StagePlan(Device(get_gpu("T4-16G"), 0, 0), (8, 8, 8)),
            StagePlan(Device(get_gpu("T4-16G"), 0, 1), (4, 4, 4)),
            StagePlan(Device(get_gpu("V100-32G"), 1, 0), (16, 16)),
        ),
        prefill_microbatch=2,
        decode_microbatch=4,
        workload=workload,
    )
    print(plan.describe())

    # on-the-fly loader: module-level streaming bounds host DRAM
    for gran in ("shard", "module"):
        tl = simulate_loading(cfg, plan.layer_bits, granularity=gran)
        print(f"loading ({gran:>6}): {tl.total_seconds * 1e3:.2f} ms, "
              f"peak host DRAM {tl.peak_host_dram_bytes / 1024:.1f} KiB")

    print("\nexecuting on the thread-pipelined runtime...")
    with PipelineRuntime(reference, plan) as rt:
        tokens = rt.generate(prompts, workload.gen_len)
        stats = rt.stats
    print(f"generated {tokens.size} tokens "
          f"({stats.prefill_microbatches} prefill micro-batches, "
          f"{stats.decode_groups} decode groups, "
          f"{stats.total_seconds:.3f}s wall)")

    # verify against a single-process model with identical fake-quant
    fq = reference.clone()
    for i, b in enumerate(plan.layer_bits):
        if b < 16:
            fq.apply_to_layer(i, lambda _n, w, b=b: quantize_dequantize(w, b))
    expected = generate(fq, prompts, workload.gen_len).tokens
    assert np.array_equal(tokens, expected), "runtime diverged from reference!"
    print("token-exact match with the single-process reference — "
          "the distributed execution is faithful.")


if __name__ == "__main__":
    main()
