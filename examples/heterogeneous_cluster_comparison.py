#!/usr/bin/env python3
"""Harvesting idle low-calibre GPUs: scheme comparison on mixed clusters.

The paper's motivating scenario (Fig. 1): production fleets are full of
under-utilized T4s/P100s while A100s run hot.  This example builds a
cluster from that idle capacity and compares serving schemes — PipeEdge,
Uniform, FlexGen(-int8) offloading, and LLM-PQ — on the offline batch
workload, printing a Table-4-style comparison.

Run:  python examples/heterogeneous_cluster_comparison.py [cluster_id]
"""

import sys

from repro import DEFAULT_WORKLOAD, compare_schemes
from repro.bench.tables import format_table
from repro.hardware import PAPER_CLUSTERS, generate_fleet_trace, paper_cluster


def main() -> None:
    cluster_id = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    model = PAPER_CLUSTERS[cluster_id]
    cluster = paper_cluster(cluster_id)

    # the motivation: how much fleet capacity sits idle per GPU type?
    trace = generate_fleet_trace(seed=0)
    idle = trace.idle_capacity_fraction()
    print("idle fleet capacity by GPU type (month average):")
    for gpu, frac in sorted(idle.items(), key=lambda kv: -kv[1]):
        print(f"  {gpu:<10} {100 * frac:5.1f} %")

    print(f"\nserving {model} on {cluster.describe()}")
    schemes = ("PipeEdge", "Uniform", "FlexGen", "FlexGen-int8", "LLM-PQ")
    if model.startswith("bloom"):
        schemes = ("PipeEdge", "Uniform", "LLM-PQ")
    reports = compare_schemes(
        model, cluster, DEFAULT_WORKLOAD, schemes=schemes, group_size=2,
    )
    ref = next(r for r in reports if r.scheme == "PipeEdge")
    rows = []
    for r in reports:
        row = r.row()
        row["x_vs_pipeedge"] = round(r.speedup_over(ref), 2) if r.feasible else None
        rows.append(row)
    print("\n" + format_table(rows, title=f"cluster {cluster_id} — serving comparison"))

    best = max(reports, key=lambda r: r.throughput)
    print(f"\nwinner: {best.scheme} at {best.throughput:.1f} tok/s")


if __name__ == "__main__":
    main()
