#!/usr/bin/env python3
"""Quantization deep dive: GPTQ vs RTN, Theorem 1, and the indicator.

All measurements here are real (NumPy matrices, genuinely quantized):

1. GPTQ's error feedback beats round-to-nearest on the calibration
   objective ||WX - W_hat X||^2 (Eq. 1);
2. Theorem 1's variance-inflation bound holds empirically for both
   rounding modes;
3. the Prop.-2 variance indicator ranks layer sensitivity usefully: on
   a tiny model, protecting the layers it flags yields lower output
   divergence than protecting random ones, at a fraction of the cost of
   the Hessian probe.

Run:  python examples/quantization_study.py
"""

import numpy as np

from repro.bench.tables import format_table
from repro.models import TinyDecoderLM, calibration_batch, get_model
from repro.quant import (
    calibration_objective,
    gptq_quantize,
    hessian_indicator,
    measured_variance_inflation,
    random_indicator,
    rtn_quantize,
    variance_indicator,
)
from repro.sim.quality import measure_kl_tiny


def gptq_vs_rtn() -> None:
    rng = np.random.default_rng(0)
    d, o, n = 96, 64, 512
    w = rng.normal(0, 0.05, size=(d, o))
    base = rng.normal(0, 1.0, size=(n, d // 2))
    x = np.hstack([base, base + rng.normal(0, 0.3, size=(n, d - d // 2))])
    rows = []
    for bits in (3, 4, 8):
        og = calibration_objective(w, gptq_quantize(w, x, bits).dequantize(), x)
        orr = calibration_objective(w, rtn_quantize(w, bits).dequantize(), x)
        rows.append({"bits": bits, "gptq_err": f"{og:.3f}", "rtn_err": f"{orr:.3f}",
                     "improvement_%": round(100 * (1 - og / orr), 1)})
    print(format_table(rows, title="1) GPTQ vs round-to-nearest (Eq.-1 objective)"))


def theorem1() -> None:
    rng = np.random.default_rng(1)
    w = rng.normal(0, 0.02, size=(64, 48))
    x = rng.normal(0.1, 1.0, size=(1024, 64))
    rows = []
    for rounding in ("deterministic", "stochastic"):
        for bits in (3, 4):
            infl, bound = measured_variance_inflation(w, x, bits, rounding=rounding)
            rows.append({
                "rounding": rounding, "bits": bits,
                "measured_inflation": f"{infl:.2e}",
                "theorem1_bound": f"{bound:.2e}",
                "holds": infl <= 1.5 * bound,
            })
    print("\n" + format_table(rows, title="2) Theorem 1 — output-variance inflation"))


def indicator_study() -> None:
    cfg = get_model("tiny-8l")
    model = TinyDecoderLM(cfg, seed=0)
    calib = calibration_batch(cfg.vocab_size, batch=4, seq_len=24)

    vi = variance_indicator(model, calib)
    hi = hessian_indicator(model, calib)
    ri = random_indicator(cfg.num_layers, seed=5)

    rows = []
    for name, table in (("variance (Prop. 2)", vi), ("hessian", hi), ("random", ri)):
        # protect the 4 most sensitive layers at FP16, quantize rest to 4-bit
        order = np.argsort(-table.column(4))
        bits = [4] * cfg.num_layers
        for i in order[:4]:
            bits[int(i)] = 16
        kl = measure_kl_tiny("tiny-8l", bits, seed=0)
        rows.append({"indicator": name, "kl_after_protecting_top4": f"{kl:.3e}",
                     "build_overhead_s": round(table.overhead_seconds, 4)})
    print("\n" + format_table(rows, title="3) indicator-guided layer protection"))


def main() -> None:
    gptq_vs_rtn()
    theorem1()
    indicator_study()


if __name__ == "__main__":
    main()
