#!/usr/bin/env python3
"""Phase-aware planning across a realistic prompt-length distribution.

Samples a ShareGPT-like conversation trace (Sec. 2.1's observation:
prompt lengths vary wildly), buckets it into padded offline workloads,
and plans each bucket on cluster 3.  Shows how the planner's choices —
micro-batch sizes, partition, precision — shift as the prefill/decode
balance moves: long prompts are prefill-heavy (compute-bound), short
prompts with long generations are decode-heavy (memory-bound).

Run:  python examples/workload_characterization.py
"""

from repro import evaluate_plan, plan_llmpq
from repro.bench.tables import format_table
from repro.cost.profiler import build_latency_model
from repro.hardware import paper_cluster
from repro.models import get_model
from repro.workload import sample_sharegpt_like, workloads_from_trace


def main() -> None:
    trace = sample_sharegpt_like(10_000, seed=0)
    print(f"sampled {trace.size} conversations; "
          f"{100 * trace.fraction_short(128):.0f}% have prompts < 128 tokens")

    buckets = workloads_from_trace(trace, batch=32, pad_to=(128, 512, 1024))
    cluster = paper_cluster(3)
    lat = build_latency_model(
        [d.type_name for d in cluster.devices], get_model("opt-30b")
    )

    rows = []
    for w in buckets:
        res = plan_llmpq("opt-30b", cluster, w, group_size=4, latency_model=lat)
        if res.plan is None:
            rows.append({"s": w.prompt_len, "n": w.gen_len, "plan": "infeasible"})
            continue
        rep = evaluate_plan(res.plan, cluster)
        pre_frac = 0.0
        from repro.sim.pipeline import simulate_pipeline

        sim = simulate_pipeline(res.plan, cluster)
        pre_frac = sim.prefill_latency / sim.total_latency
        rows.append(
            {
                "s": w.prompt_len,
                "n": w.gen_len,
                "mb_pre/dec": f"{res.plan.prefill_microbatch}/{res.plan.decode_microbatch}",
                "avg_bits": round(res.plan.average_bits(), 2),
                "tput_tok_s": round(rep.throughput, 1),
                "prefill_share_%": round(100 * pre_frac, 1),
            }
        )
    print("\n" + format_table(rows, title="per-bucket plans on cluster 3 (OPT-30b)"))
    print("\nnote how the prefill share of the batch latency moves with the "
          "prompt length — the reason single-phase partitioners misplace "
          "layers on heterogeneous GPUs.")


if __name__ == "__main__":
    main()
