#!/usr/bin/env python3
"""Extending the search with tensor parallelism (paper Sec. 7).

The paper sketches how TP folds into LLM-PQ: fuse each TP group into a
virtual device with aggregated memory/compute (discounted by allreduce
overhead) and run the unchanged 1-D pipeline planner per candidate mesh.
This example enumerates uniform TP degrees on a 4x V100 node serving
OPT-66b and shows how the trade-off between pipeline depth and per-stage
speed resolves.

Run:  python examples/tensor_parallel_planning.py
"""

from repro.bench.tables import format_table
from repro.core.optimizer import PlannerConfig
from repro.core.tensor_parallel import (
    enumerate_tp_clusters,
    plan_with_tensor_parallel,
    tp_efficiency,
)
from repro.hardware import get_gpu, paper_cluster
from repro.models import get_model
from repro.workload import DEFAULT_WORKLOAD


def main() -> None:
    cluster = paper_cluster(10)  # 4x V100-32G
    cfg = get_model("opt-66b")

    rows = [
        {
            "tp_degree": k,
            "allreduce_efficiency": round(tp_efficiency(get_gpu("V100-32G"), k, cfg), 3),
            "virtual_device": fused.devices[0].type_name,
            "pipeline_stages": fused.num_devices,
        }
        for k, fused in enumerate_tp_clusters(cluster, cfg, max_tp=4)
    ]
    print(format_table(rows, title="candidate device meshes on 4x V100 (NVLink)"))

    print("\nplanning every mesh with the standard 1-D planner...")
    res = plan_with_tensor_parallel(
        "opt-66b", cluster, DEFAULT_WORKLOAD,
        config=PlannerConfig(group_size=4, decode_mb_candidates=(8, 16),
                             prefill_mb_cap=8),
        max_tp=4,
    )
    for k, obj in sorted(res.per_degree.items()):
        marker = "  <- winner" if k == res.tp_degree else ""
        print(f"  tp={k}: objective {obj:.2f}{marker}")
    print("\nwinning plan:")
    print(res.plan.describe())


if __name__ == "__main__":
    main()
