#!/usr/bin/env python3
"""Quickstart: plan and evaluate LLM serving on a heterogeneous cluster.

Serves OPT-30b on the paper's cluster 3 (3x T4-16G + 1x V100-32G): the
assigner jointly picks the pipeline partition, per-layer quantization
bitwidths and phase-specific micro-batch sizes, then the simulator
reports end-to-end latency / throughput and the quality surrogate scores
perplexity.

Run:  python examples/quickstart.py
"""

from repro import DEFAULT_WORKLOAD, evaluate_plan, plan_llmpq
from repro.hardware import paper_cluster


def main() -> None:
    cluster = paper_cluster(3)
    print(f"cluster : {cluster.describe()}")
    print(f"workload: s={DEFAULT_WORKLOAD.prompt_len} "
          f"n={DEFAULT_WORKLOAD.gen_len} b={DEFAULT_WORKLOAD.global_batch}")

    print("\nplanning (profiles devices, fits cost models, solves the ILP)...")
    # theta=5: weigh quality enough that the T4s quantize to INT8 while
    # the V100 keeps most layers FP16 — the paper's adaptive behaviour
    result = plan_llmpq("opt-30b", cluster, DEFAULT_WORKLOAD, group_size=2, theta=5.0)
    assert result.plan is not None, "no feasible plan found"

    print("\n=== chosen plan ===")
    print(result.plan.describe())
    print(f"(searched {len(result.candidates)} candidates "
          f"in {result.total_seconds:.1f}s)")

    report = evaluate_plan(result.plan, cluster)
    print("\n=== simulated serving ===")
    print(f"latency    : {report.latency:.2f} s per batch")
    print(f"throughput : {report.throughput:.2f} tokens/s")
    print(f"perplexity : {report.perplexity:.2f}")
    print(f"avg bits   : {report.average_bits:.2f}")

    path = "strategy_cluster3.json"
    result.plan.to_json(path)
    print(f"\nstrategy written to {path} — serve it with:")
    print(f"  llmpq-dist --strat-file-name {path}")


if __name__ == "__main__":
    main()
